package hostdb

import (
	"errors"
	"fmt"
	"hash/crc32"

	"aion/internal/model"
	"aion/internal/wal"
)

// This file is the host database's replication surface (ROADMAP item 2).
// The unit of replication is the durable byte: a primary exposes the
// fsync-covered prefixes of its string table and transaction log, and a
// follower appends those bytes verbatim to its own files. Because both
// files are append-only and the records are replayed through the same
// recovery machinery Open uses, a follower's on-disk state is always a
// byte-identical prefix of the primary's — positional string refs resolve
// without translation, and divergence is detectable by simple offset/CRC
// comparison.

// ErrReplicaReadOnly is returned when a transaction tries to commit on a
// database opened with Options.Replica. Replicas accept changes only from
// their primary's log stream.
var ErrReplicaReadOnly = errors.New("hostdb: replica is read-only")

// IsReplica reports whether this database was opened as a replication
// follower.
func (db *DB) IsReplica() bool { return db.opts.Replica }

// DurableExtents returns the fsync-covered sizes of the string table and
// transaction log — the byte watermarks replication may ship up to.
//
// The transaction-log extent is captured FIRST: the commit path syncs
// strings before the log, so any string ref held by a record below the
// returned txn extent is guaranteed to lie below a strings extent captured
// afterwards. Capturing in the other order could expose a log record whose
// refs point past the shipped strings prefix.
func (db *DB) DurableExtents() (strBytes, txnBytes int64) {
	if db.txnLog != nil {
		txnBytes = db.txnLog.SyncedSize()
	}
	strBytes = db.strings.SyncedSize()
	return strBytes, txnBytes
}

// ReadStringsRaw returns up to max bytes of whole string-table records
// starting at byte offset off, bounded by the durable extent.
func (db *DB) ReadStringsRaw(off int64, max int) ([]byte, error) {
	return db.strings.ReadRaw(off, max)
}

// TailCRC summarizes the last bytes below the given durable offsets of the
// string table and transaction log: up to maxTail bytes each, CRC32'd.
// A follower sends this digest with its replicate request; the primary
// recomputes the same ranges over its own files (which the follower's
// files must be a byte prefix of) and a mismatch proves the histories
// diverged even though the offsets line up — the same-length-different-
// suffix case a demoted primary presents when it tries to rejoin.
func (db *DB) TailCRC(strTo, txnTo, strMax, txnMax int64) (strLen, txnLen int64, strCRC, txnCRC uint32, err error) {
	strLen = strTo
	if strLen > strMax {
		strLen = strMax
	}
	if strLen > 0 {
		b, rerr := db.strings.ReadRange(strTo-strLen, strTo)
		if rerr != nil {
			return 0, 0, 0, 0, rerr
		}
		strCRC = crc32.ChecksumIEEE(b)
	}
	txnLen = txnTo
	if txnLen > txnMax {
		txnLen = txnMax
	}
	if txnLen > 0 {
		if db.txnLog == nil {
			return 0, 0, 0, 0, errors.New("hostdb: no transaction log for tail CRC")
		}
		b, rerr := db.txnLog.ReadRange(txnTo-txnLen, txnTo)
		if rerr != nil {
			return 0, 0, 0, 0, rerr
		}
		txnCRC = crc32.ChecksumIEEE(b)
	}
	return strLen, txnLen, strCRC, txnCRC, nil
}

// TxnFrames reads durable transaction-log records starting at byte offset
// from, up to roughly maxBytes of payload, and returns the copied record
// payloads plus the offset the next call should resume from. At least one
// record is returned when any is available, so a caller always makes
// progress even when a single commit exceeds maxBytes.
func (db *DB) TxnFrames(from int64, maxBytes int) (frames [][]byte, next int64, err error) {
	next = from
	if db.txnLog == nil {
		return nil, next, nil
	}
	durable := db.txnLog.SyncedSize()
	if from >= durable {
		return nil, next, nil
	}
	total := 0
	_, err = db.txnLog.ScanBatch(from, 0, func(fs []wal.Frame) bool {
		for _, f := range fs {
			if f.Off >= durable {
				return false
			}
			if total > 0 && total+len(f.Payload) > maxBytes {
				return false
			}
			frames = append(frames, append([]byte(nil), f.Payload...))
			total += len(f.Payload)
			// 8 bytes of record header (length + CRC) precede the payload.
			next = f.Off + 8 + int64(len(f.Payload))
		}
		return true
	})
	if err != nil {
		return nil, from, fmt.Errorf("hostdb: txn frames at %d: %w", from, err)
	}
	return frames, next, nil
}

// ApplyShipment ingests one replication shipment on a follower: a chunk of
// raw string-table bytes (possibly empty) and a batch of transaction-log
// record payloads, exactly as they appear in the primary's files.
//
// Order of operations is the crash-safety contract:
//
//  1. append the string bytes (log records hold positional refs into them);
//  2. decode and validate EVERY frame before touching the log, so a
//     corrupt or non-monotonic shipment is rejected wholesale;
//  3. append the frames to the follower's own transaction log;
//  4. fsync strings, then the log — durability BEFORE visibility, so the
//     watermark this call advances only ever covers bytes that survive a
//     crash;
//  5. apply the updates to the in-memory graph and fire commit listeners
//     (the follower's Aion instance ingests here), in commit order.
//
// A crash between (3) and (4) is repaired by the WAL's tail repair on
// reopen; a crash after (4) is replayed by Open's recovery scan. Either
// way the follower reconverges by resuming from its durable extents.
// Returns the follower's clock (== highest applied commit timestamp).
func (db *DB) ApplyShipment(strChunk []byte, frames [][]byte) (model.Timestamp, error) {
	// Shipments are accepted only in the LIVE replica role: a promoted
	// follower is a primary now (its log is the new timeline's authority),
	// and a fenced ex-primary may hold a divergent suffix that shipped
	// bytes must never be appended after.
	if r := db.Role(); r != RoleReplica {
		return 0, fmt.Errorf("hostdb: ApplyShipment on %s database", r)
	}
	if len(strChunk) > 0 {
		if err := db.strings.AppendRaw(strChunk); err != nil {
			return 0, fmt.Errorf("hostdb: apply shipment strings: %w", err)
		}
	}
	if len(frames) == 0 {
		if len(strChunk) > 0 {
			if err := db.strings.Sync(); err != nil {
				return 0, err
			}
			db.stats.fsyncs.Add(1)
		}
		return db.Clock(), nil
	}

	// Validate the whole batch up front: decodable, non-empty, and commit
	// timestamps strictly increasing from the follower's clock. A failure
	// here is divergence — the caller must fail stop, not skip.
	clock := db.Clock()
	commits := make([][]model.Update, 0, len(frames))
	for i, payload := range frames {
		us, err := db.decodeCommit(payload)
		if err != nil {
			return 0, fmt.Errorf("hostdb: shipment frame %d: %w", i, err)
		}
		if len(us) == 0 {
			return 0, fmt.Errorf("hostdb: shipment frame %d: empty commit", i)
		}
		if us[0].TS <= clock {
			return 0, fmt.Errorf("hostdb: shipment frame %d: commit ts %d not above clock %d", i, us[0].TS, clock)
		}
		clock = us[0].TS
		commits = append(commits, us)
	}

	if db.txnLog != nil {
		// Push the shipped string bytes to the OS before the log records
		// that reference them: the fsync pair below orders durability under
		// power loss, and this flush keeps the same ordering when only the
		// process dies (completed writes survive, buffers do not).
		if err := db.strings.Flush(); err != nil {
			return 0, err
		}
		if _, err := db.txnLog.AppendBatch(frames); err != nil {
			return 0, fmt.Errorf("hostdb: apply shipment append: %w", err)
		}
		if err := db.strings.Sync(); err != nil {
			return 0, err
		}
		db.stats.fsyncs.Add(1)
		if err := db.txnLog.Sync(); err != nil {
			return 0, err
		}
		db.stats.fsyncs.Add(1)
	}

	db.mu.Lock()
	for _, us := range commits {
		for _, u := range us {
			if err := db.current.Apply(u); err != nil {
				// The primary applied this exact update sequence; failure
				// here means the follower's graph diverged. Fail stop.
				db.mu.Unlock()
				return 0, fmt.Errorf("hostdb: shipment apply ts %d: %w", u.TS, err)
			}
			if u.TS > db.clock {
				db.clock = u.TS
			}
		}
	}
	db.mu.Unlock()
	db.idMu.Lock()
	for _, us := range commits {
		for _, u := range us {
			if u.Kind.IsNodeOp() && u.NodeID >= db.nextNode {
				db.nextNode = u.NodeID + 1
			}
			if !u.Kind.IsNodeOp() && u.RelID >= db.nextRel {
				db.nextRel = u.RelID + 1
			}
		}
	}
	db.idMu.Unlock()
	for _, us := range commits {
		for _, u := range us {
			db.accountRecords(u)
		}
	}

	db.listenerMu.RLock()
	listeners := db.listeners
	db.listenerMu.RUnlock()
	for _, us := range commits {
		for _, l := range listeners {
			l(us[0].TS, us)
		}
	}
	db.stats.commits.Add(int64(len(commits)))
	db.stats.batches.Add(1)
	return clock, nil
}
