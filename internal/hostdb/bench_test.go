package hostdb

import (
	"fmt"
	"sync"
	"testing"

	"aion/internal/model"
)

// BenchmarkCommitThroughput measures the synchronous-commit write path at
// several committer counts, with the group-commit pipeline on and off (the
// NoGroupCommit ablation is the pre-pipeline path: two fsyncs per
// transaction). It is part of the bench-smoke set.
func BenchmarkCommitThroughput(b *testing.B) {
	for _, pipeline := range []bool{false, true} {
		for _, committers := range []int{1, 16} {
			name := fmt.Sprintf("committers=%d/pipeline=%v", committers, pipeline)
			b.Run(name, func(b *testing.B) {
				db, err := Open(Options{
					Dir:           b.TempDir(),
					SyncCommits:   true,
					NoGroupCommit: !pipeline,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer db.Close()

				b.ResetTimer()
				var wg sync.WaitGroup
				per := b.N/committers + 1
				for w := 0; w < committers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for i := 0; i < per; i++ {
							tx := db.Begin()
							if _, err := tx.CreateNode([]string{"Bench"},
								model.Properties{"i": model.IntValue(int64(i))}); err != nil {
								b.Error(err)
								return
							}
							if _, err := tx.Commit(); err != nil {
								b.Error(err)
								return
							}
						}
					}(w)
				}
				wg.Wait()
				b.StopTimer()
				st := db.Stats()
				if st.Commits > 0 {
					b.ReportMetric(float64(st.Fsyncs)/float64(st.Commits), "fsyncs/commit")
				}
			})
		}
	}
}
