package hostdb

import (
	"sync"
	"testing"

	"aion/internal/model"
)

func openDB(t *testing.T, opts Options) *DB {
	t.Helper()
	if opts.Dir == "" && !opts.InMemory {
		opts.Dir = t.TempDir()
	}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestBasicTransaction(t *testing.T) {
	db := openDB(t, Options{})
	tx := db.Begin()
	a, err := tx.CreateNode([]string{"Person"}, model.Properties{"name": model.StringValue("ada")})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := tx.CreateNode([]string{"Person"}, nil)
	r, err := tx.CreateRel(a, b, "KNOWS", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Read-your-writes before commit.
	if tx.Node(a) == nil || tx.Rel(r) == nil {
		t.Fatal("transaction must see its own writes")
	}
	// Not visible outside before commit.
	if db.Current().Node(a) != nil {
		t.Fatal("uncommitted write visible")
	}
	ts, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if ts != 1 {
		t.Errorf("first commit ts = %d", ts)
	}
	g := db.Current()
	if g.Node(a) == nil || g.Rel(r) == nil {
		t.Fatal("committed writes missing")
	}
}

func TestRollback(t *testing.T) {
	db := openDB(t, Options{InMemory: true})
	tx := db.Begin()
	tx.CreateNode(nil, nil)
	tx.Rollback()
	if _, err := tx.Commit(); err != ErrRolledBack {
		t.Errorf("commit after rollback: %v", err)
	}
	if n, _ := db.Counts(); n != 0 {
		t.Error("rolled-back write persisted")
	}
}

func TestCommitTimestampsMonotonic(t *testing.T) {
	db := openDB(t, Options{InMemory: true})
	var last model.Timestamp
	for i := 0; i < 10; i++ {
		ts, err := db.Run(func(tx *Tx) error {
			_, err := tx.CreateNode(nil, nil)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		if ts <= last {
			t.Fatalf("non-monotonic commit ts %d after %d", ts, last)
		}
		last = ts
	}
}

func TestListenersReceiveStampedUpdates(t *testing.T) {
	db := openDB(t, Options{InMemory: true})
	var mu sync.Mutex
	var got []model.Update
	var gotTS model.Timestamp
	db.OnCommit(func(ts model.Timestamp, us []model.Update) {
		mu.Lock()
		defer mu.Unlock()
		gotTS = ts
		got = append(got, us...)
	})
	db.Run(func(tx *Tx) error {
		a, _ := tx.CreateNode([]string{"X"}, nil)
		b, _ := tx.CreateNode(nil, nil)
		_, err := tx.CreateRel(a, b, "R", nil)
		return err
	})
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 3 {
		t.Fatalf("listener saw %d updates", len(got))
	}
	for _, u := range got {
		if u.TS != gotTS || u.TS == 0 {
			t.Errorf("update not stamped: %+v", u)
		}
	}
}

func TestConstraintsSurfaceAtOperationTime(t *testing.T) {
	db := openDB(t, Options{InMemory: true})
	db.Run(func(tx *Tx) error {
		a, _ := tx.CreateNode(nil, nil)
		b, _ := tx.CreateNode(nil, nil)
		_, err := tx.CreateRel(a, b, "R", nil)
		return err
	})
	tx := db.Begin()
	// Deleting a node that still has a relationship fails eagerly.
	if err := tx.DeleteNode(0); err == nil {
		t.Error("delete with rels must fail")
	}
	// Dangling rel creation fails eagerly.
	if _, err := tx.CreateRel(0, 999, "R", nil); err == nil {
		t.Error("dangling rel must fail")
	}
	tx.Rollback()
}

func TestDeleteFlow(t *testing.T) {
	db := openDB(t, Options{InMemory: true})
	var rel model.RelID
	db.Run(func(tx *Tx) error {
		a, _ := tx.CreateNode(nil, nil)
		b, _ := tx.CreateNode(nil, nil)
		rel, _ = tx.CreateRel(a, b, "R", nil)
		return nil
	})
	_, err := db.Run(func(tx *Tx) error {
		if err := tx.DeleteRel(rel); err != nil {
			return err
		}
		return tx.DeleteNode(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	nodes, rels := db.Counts()
	if nodes != 1 || rels != 0 {
		t.Errorf("counts after delete: %d/%d", nodes, rels)
	}
}

func TestConcurrentWriters(t *testing.T) {
	db := openDB(t, Options{InMemory: true})
	const writers = 8
	const perWriter = 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := db.Run(func(tx *Tx) error {
					_, err := tx.CreateNode([]string{"W"}, nil)
					return err
				}); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	nodes, _ := db.Counts()
	if nodes != writers*perWriter {
		t.Errorf("nodes = %d, want %d", nodes, writers*perWriter)
	}
	if db.Clock() != model.Timestamp(writers*perWriter) {
		t.Errorf("clock = %d", db.Clock())
	}
}

func TestRecoveryFromTxnLog(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	db.Run(func(tx *Tx) error {
		a, _ := tx.CreateNode([]string{"P"}, model.Properties{"k": model.IntValue(1)})
		b, _ := tx.CreateNode(nil, nil)
		tx.CreateRel(a, b, "R", nil)
		return nil
	})
	db.Run(func(tx *Tx) error { return tx.SetNodeProps(0, model.Properties{"k": model.IntValue(2)}, nil) })
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	nodes, rels := db2.Counts()
	if nodes != 2 || rels != 1 {
		t.Fatalf("recovered counts %d/%d", nodes, rels)
	}
	if db2.Current().Node(0).Props["k"].Int() != 2 {
		t.Error("recovered property value")
	}
	if db2.Clock() != 2 {
		t.Errorf("recovered clock = %d", db2.Clock())
	}
	// New ids continue after recovered ones.
	var newID model.NodeID
	db2.Run(func(tx *Tx) error {
		newID, _ = tx.CreateNode(nil, nil)
		return nil
	})
	if newID != 2 {
		t.Errorf("new node id = %d, want 2", newID)
	}
}

func TestStorageBreakdown(t *testing.T) {
	db := openDB(t, Options{})
	db.Run(func(tx *Tx) error {
		a, _ := tx.CreateNode([]string{"P"}, model.Properties{"x": model.IntValue(1), "y": model.IntValue(2)})
		b, _ := tx.CreateNode(nil, nil)
		tx.CreateRel(a, b, "R", model.Properties{"w": model.FloatValue(1)})
		return nil
	})
	b := db.Storage()
	if b.NodeRecords != 2*NodeRecordBytes {
		t.Errorf("node records = %d", b.NodeRecords)
	}
	if b.RelRecords != RelRecordBytes {
		t.Errorf("rel records = %d", b.RelRecords)
	}
	if b.PropRecords != 3*PropRecordBytes {
		t.Errorf("prop records = %d", b.PropRecords)
	}
	if b.TxnLog == 0 {
		t.Error("txn log must be retained")
	}
	if b.Total() <= b.TxnLog {
		t.Error("total must include records")
	}
}

func TestEmptyCommitIsNoop(t *testing.T) {
	db := openDB(t, Options{InMemory: true})
	before := db.Clock()
	tx := db.Begin()
	ts, err := tx.Commit()
	if err != nil || ts != before {
		t.Errorf("empty commit: ts %d err %v", ts, err)
	}
}
