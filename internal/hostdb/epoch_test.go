package hostdb

import (
	"errors"
	"testing"

	"aion/internal/model"
)

func commitNode(t *testing.T, db *DB) error {
	t.Helper()
	tx := db.Begin()
	if _, err := tx.CreateNode([]string{"N"}, model.Properties{"k": model.StringValue("v")}); err != nil {
		t.Fatal(err)
	}
	_, err := tx.Commit()
	return err
}

func TestPromoteFlipsReplicaWritable(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, Replica: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := commitNode(t, db); !errors.Is(err, ErrReplicaReadOnly) {
		t.Fatalf("replica commit err = %v, want ErrReplicaReadOnly", err)
	}
	if err := db.Promote(0); err == nil {
		t.Fatal("promote at epoch 0 (not above observed) must fail")
	}
	if err := db.Promote(1); err != nil {
		t.Fatalf("promote: %v", err)
	}
	if db.Role() != RolePrimary || db.Epoch() != 1 {
		t.Fatalf("role=%v epoch=%d after promote", db.Role(), db.Epoch())
	}
	if err := db.Promote(1); err != nil {
		t.Fatalf("re-promote at same epoch must be idempotent: %v", err)
	}
	if err := commitNode(t, db); err != nil {
		t.Fatalf("promoted commit: %v", err)
	}
	// Shipments are now rejected: the promoted node is the timeline's
	// authority.
	if _, err := db.ApplyShipment(nil, [][]byte{{0}}); err == nil {
		t.Fatal("ApplyShipment on promoted node must fail")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Promotion survives a restart even when relaunched with the stale
	// replica config.
	db2, err := Open(Options{Dir: dir, Replica: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Role() != RolePrimary || db2.Epoch() != 1 {
		t.Fatalf("after reopen: role=%v epoch=%d, want primary/1", db2.Role(), db2.Epoch())
	}
	if err := commitNode(t, db2); err != nil {
		t.Fatalf("commit after reopen: %v", err)
	}
}

func TestObserveHigherEpochFencesPrimary(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := commitNode(t, db); err != nil {
		t.Fatal(err)
	}
	// Same or lower epoch: no-op.
	if _, demoted, err := db.ObserveEpoch(0); err != nil || demoted {
		t.Fatalf("observe(0) = demoted %v err %v", demoted, err)
	}
	// Higher epoch: the primary fences itself.
	epoch, demoted, err := db.ObserveEpoch(3)
	if err != nil || !demoted || epoch != 3 {
		t.Fatalf("observe(3) = %d, %v, %v", epoch, demoted, err)
	}
	if db.Role() != RoleFenced {
		t.Fatalf("role = %v, want fenced", db.Role())
	}
	if err := commitNode(t, db); !errors.Is(err, ErrFenced) {
		t.Fatalf("fenced commit err = %v, want ErrFenced", err)
	}
	if _, err := db.ApplyShipment(nil, [][]byte{{0}}); err == nil {
		t.Fatal("fenced node must reject shipments")
	}
	if err := db.Promote(4); !errors.Is(err, ErrFenced) {
		t.Fatalf("fenced promote err = %v, want ErrFenced", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Fencing is sticky across restarts with the old primary config.
	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Role() != RoleFenced || db2.Epoch() != 3 {
		t.Fatalf("after reopen: role=%v epoch=%d, want fenced/3", db2.Role(), db2.Epoch())
	}
	if err := commitNode(t, db2); !errors.Is(err, ErrFenced) {
		t.Fatalf("reopened fenced commit err = %v, want ErrFenced", err)
	}
}

func TestObserveEpochOnReplicaAdoptsWithoutFencing(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, Replica: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, demoted, err := db.ObserveEpoch(2); err != nil || demoted {
		t.Fatalf("replica observe = demoted %v err %v", demoted, err)
	}
	if db.Role() != RoleReplica || db.Epoch() != 2 {
		t.Fatalf("role=%v epoch=%d, want replica/2", db.Role(), db.Epoch())
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(Options{Dir: dir, Replica: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Role() != RoleReplica || db2.Epoch() != 2 {
		t.Fatalf("after reopen: role=%v epoch=%d, want replica/2", db2.Role(), db2.Epoch())
	}
	// A promote after adopting epoch 2 must go above it.
	if err := db2.Promote(2); err == nil {
		t.Fatal("promote at observed epoch must fail")
	}
	if err := db2.Promote(3); err != nil {
		t.Fatalf("promote(3): %v", err)
	}
}

func TestTailCRCMatchesPrefix(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, SyncCommits: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 5; i++ {
		if err := commitNode(t, db); err != nil {
			t.Fatal(err)
		}
	}
	strOff, txnOff := db.DurableExtents()
	if strOff == 0 || txnOff == 0 {
		t.Fatalf("extents = %d,%d", strOff, txnOff)
	}
	sl, tl, sc, tc, err := db.TailCRC(strOff, txnOff, 1<<20, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if sl != strOff || tl != txnOff {
		t.Fatalf("tail lens %d,%d want %d,%d", sl, tl, strOff, txnOff)
	}
	// Recomputing over the same node's own ranges must match (the sweep
	// compares a follower's digest against the primary's files).
	sl2, tl2, sc2, tc2, err := db.TailCRC(strOff, txnOff, 1<<20, 1<<20)
	if err != nil || sl2 != sl || tl2 != tl || sc2 != sc || tc2 != tc {
		t.Fatalf("TailCRC not deterministic: %v", err)
	}
	// A bounded tail reads only the last maxTail bytes.
	sl3, tl3, _, _, err := db.TailCRC(strOff, txnOff, 8, 8)
	if err != nil || sl3 != 8 || tl3 != 8 {
		t.Fatalf("bounded tail = %d,%d (%v), want 8,8", sl3, tl3, err)
	}
}
