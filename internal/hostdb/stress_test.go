package hostdb

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"aion/internal/memgraph"
	"aion/internal/model"
	"aion/internal/vfs"
)

// TestStressGroupCommitConcurrency hammers the commit pipeline with many
// synchronous committers while readers scan the current graph, asserting
// the pipeline's ordering contract under the race detector: commit
// timestamps are dense and unique, after-commit listeners fire in strictly
// increasing timestamp order, and every acked commit was delivered to the
// listener before Commit returned.
func TestStressGroupCommitConcurrency(t *testing.T) {
	const (
		committers = 8
		perWorker  = 40
	)
	// The in-memory FaultFS (no faults armed) keeps the full durability
	// path — batch appends, the strings-sync + log-sync pair — while its
	// microsecond fsyncs let the race detector interleave aggressively
	// instead of idling on disk.
	db, err := Open(Options{FS: vfs.NewFaultFS(), SyncCommits: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Listener-side record: must be strictly increasing, one call per tx.
	var (
		listenerMu sync.Mutex
		lastTS     model.Timestamp
		delivered  = make(map[model.Timestamp]bool)
	)
	db.OnCommit(func(ts model.Timestamp, us []model.Update) {
		listenerMu.Lock()
		defer listenerMu.Unlock()
		if ts <= lastTS {
			t.Errorf("listener ts %d after %d: not strictly increasing", ts, lastTS)
		}
		lastTS = ts
		if len(us) == 0 || us[0].TS != ts {
			t.Errorf("listener ts %d got %d updates, first stamped %v", ts, len(us), us)
		}
		delivered[ts] = true
	})

	var stop atomic.Bool
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for !stop.Load() {
				db.Counts()
				db.View(func(g *memgraph.Graph) { _ = g.NodeCount() })
				// Unthrottled spinning starves the committers' channel
				// wake-ups under the race detector's serialized scheduler.
				runtime.Gosched()
			}
		}()
	}

	seen := make([]map[model.Timestamp]bool, committers)
	var wg sync.WaitGroup
	for w := 0; w < committers; w++ {
		seen[w] = make(map[model.Timestamp]bool)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tx := db.Begin()
				if _, err := tx.CreateNode([]string{"S"},
					model.Properties{"w": model.IntValue(int64(w))}); err != nil {
					t.Error(err)
					return
				}
				ts, err := tx.Commit()
				if err != nil {
					t.Error(err)
					return
				}
				// Listener order is part of the commit contract: by the
				// time Commit returns, this tx's listeners have fired.
				listenerMu.Lock()
				ok := delivered[ts]
				listenerMu.Unlock()
				if !ok {
					t.Errorf("commit ts=%d returned before listener delivery", ts)
				}
				seen[w][ts] = true
			}
		}(w)
	}
	wg.Wait()
	stop.Store(true)
	readers.Wait()
	if t.Failed() {
		return
	}

	// Timestamps are dense and unique across all committers.
	total := committers * perWorker
	all := make(map[model.Timestamp]int)
	for w := range seen {
		for ts := range seen[w] {
			all[ts]++
		}
	}
	if len(all) != total {
		t.Fatalf("%d distinct timestamps for %d commits", len(all), total)
	}
	for ts := model.Timestamp(1); ts <= model.Timestamp(total); ts++ {
		if all[ts] != 1 {
			t.Fatalf("ts=%d assigned %d times", ts, all[ts])
		}
	}
	if db.Clock() != model.Timestamp(total) {
		t.Fatalf("clock %d, want %d", db.Clock(), total)
	}

	st := db.Stats()
	if st.Commits != int64(total) {
		t.Fatalf("stats report %d commits, want %d", st.Commits, total)
	}
	if st.MaxBatch < 1 {
		t.Errorf("max batch %d, want >= 1", st.MaxBatch)
	}
	// Coalescing is timing-dependent (the in-memory fsyncs leave almost no
	// window for the queue to build up), so it is reported, not asserted;
	// the commit-throughput bench asserts it where fsyncs are real.
	t.Logf("%d commits in %d batches (max %d), %.2f fsyncs/commit",
		st.Commits, st.Batches, st.MaxBatch, float64(st.Fsyncs)/float64(st.Commits))
}
