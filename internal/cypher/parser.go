package cypher

import (
	"fmt"
	"strconv"
	"strings"

	"aion/internal/model"
)

type parser struct {
	toks []token
	pos  int
}

// Parse parses a temporal Cypher statement.
func Parse(query string) (*Statement, error) {
	toks, err := lex(query)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	if !p.cur().isEOF() {
		return nil, p.errf("unexpected trailing input %q", p.cur().text)
	}
	return st, nil
}

func (t token) isEOF() bool { return t.kind == tokEOF }

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) peek() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }
func (p *parser) next() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("cypher: parse error near position %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) expectKw(kw string) error {
	if !p.cur().isKw(kw) {
		return p.errf("expected %s, got %q", kw, p.cur().text)
	}
	p.next()
	return nil
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	if p.cur().kind != kind {
		return token{}, p.errf("expected %s, got %q", what, p.cur().text)
	}
	return p.next(), nil
}

func (p *parser) statement() (*Statement, error) {
	st := &Statement{}
	if p.cur().isKw("USE") {
		tc, err := p.useClause()
		if err != nil {
			return nil, err
		}
		st.Temporal = tc
	}
	switch {
	case p.cur().isKw("MATCH"):
		m, err := p.matchStmt()
		if err != nil {
			return nil, err
		}
		st.Match = m
	case p.cur().isKw("CREATE"):
		c, err := p.createStmt()
		if err != nil {
			return nil, err
		}
		st.Create = c
	case p.cur().isKw("CALL"):
		c, err := p.callStmt()
		if err != nil {
			return nil, err
		}
		st.Call = c
	default:
		return nil, p.errf("expected MATCH, CREATE, or CALL, got %q", p.cur().text)
	}
	return st, nil
}

// useClause parses USE GDB [FOR SYSTEM_TIME <spec>].
func (p *parser) useClause() (TemporalClause, error) {
	tc := TemporalClause{Kind: TemporalNone}
	if err := p.expectKw("USE"); err != nil {
		return tc, err
	}
	// The database name: GDB keyword or an identifier.
	if p.cur().isKw("GDB") || p.cur().kind == tokIdent {
		p.next()
	} else {
		return tc, p.errf("expected database name after USE")
	}
	if !p.cur().isKw("FOR") {
		return tc, nil
	}
	p.next()
	if err := p.expectKw("SYSTEM_TIME"); err != nil {
		return tc, err
	}
	switch {
	case p.cur().isKw("AS"):
		p.next()
		if err := p.expectKw("OF"); err != nil {
			return tc, err
		}
		e, err := p.additive()
		if err != nil {
			return tc, err
		}
		tc.Kind, tc.A = TemporalAsOf, e
	case p.cur().isKw("FROM"):
		p.next()
		a, err := p.additive()
		if err != nil {
			return tc, err
		}
		if err := p.expectKw("TO"); err != nil {
			return tc, err
		}
		b, err := p.additive()
		if err != nil {
			return tc, err
		}
		tc.Kind, tc.A, tc.B = TemporalFromTo, a, b
	case p.cur().isKw("BETWEEN"):
		p.next()
		a, err := p.additive()
		if err != nil {
			return tc, err
		}
		if err := p.expectKw("AND"); err != nil {
			return tc, err
		}
		b, err := p.additive()
		if err != nil {
			return tc, err
		}
		tc.Kind, tc.A, tc.B = TemporalBetween, a, b
	case p.cur().isKw("CONTAINED"):
		p.next()
		if err := p.expectKw("IN"); err != nil {
			return tc, err
		}
		if _, err := p.expect(tokLParen, "("); err != nil {
			return tc, err
		}
		a, err := p.additive()
		if err != nil {
			return tc, err
		}
		if _, err := p.expect(tokComma, ","); err != nil {
			return tc, err
		}
		b, err := p.additive()
		if err != nil {
			return tc, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return tc, err
		}
		tc.Kind, tc.A, tc.B = TemporalContainedIn, a, b
	default:
		return tc, p.errf("expected AS OF / FROM / BETWEEN / CONTAINED IN")
	}
	return tc, nil
}

func (p *parser) matchStmt() (*MatchStmt, error) {
	if err := p.expectKw("MATCH"); err != nil {
		return nil, err
	}
	m := &MatchStmt{}
	for {
		pat, err := p.pathPattern()
		if err != nil {
			return nil, err
		}
		m.Patterns = append(m.Patterns, pat)
		if p.cur().kind != tokComma {
			break
		}
		p.next()
	}
	var err error
	if p.cur().isKw("WHERE") {
		p.next()
		m.Where, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	for {
		switch {
		case p.cur().isKw("CREATE"):
			p.next()
			for {
				pat, err := p.pathPattern()
				if err != nil {
					return nil, err
				}
				m.Creates = append(m.Creates, pat)
				if p.cur().kind != tokComma {
					break
				}
				p.next()
			}
			continue
		case p.cur().isKw("SET"):
			p.next()
			for {
				item, err := p.setItem()
				if err != nil {
					return nil, err
				}
				m.Sets = append(m.Sets, item)
				if p.cur().kind != tokComma {
					break
				}
				p.next()
			}
			continue
		case p.cur().isKw("DETACH"):
			p.next()
			m.Detach = true
			continue
		case p.cur().isKw("DELETE"):
			p.next()
			for {
				t, err := p.expect(tokIdent, "variable")
				if err != nil {
					return nil, err
				}
				m.Deletes = append(m.Deletes, t.text)
				if p.cur().kind != tokComma {
					break
				}
				p.next()
			}
			continue
		}
		break
	}
	if p.cur().isKw("RETURN") {
		p.next()
		m.Return, err = p.returnItems()
		if err != nil {
			return nil, err
		}
	}
	if p.cur().isKw("ORDER") {
		p.next()
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			ob := OrderBy{E: e}
			if p.cur().isKw("DESC") {
				ob.Desc = true
				p.next()
			} else if p.cur().isKw("ASC") {
				p.next()
			}
			m.Order = append(m.Order, ob)
			if p.cur().kind != tokComma {
				break
			}
			p.next()
		}
	}
	if p.cur().isKw("LIMIT") {
		p.next()
		t, err := p.expect(tokInt, "limit")
		if err != nil {
			return nil, err
		}
		m.Limit, _ = strconv.Atoi(t.text)
	}
	if len(m.Return) == 0 && len(m.Sets) == 0 && len(m.Deletes) == 0 && len(m.Creates) == 0 {
		return nil, p.errf("MATCH requires RETURN, SET, DELETE, or CREATE")
	}
	return m, nil
}

func (p *parser) setItem() (SetItem, error) {
	v, err := p.expect(tokIdent, "variable")
	if err != nil {
		return SetItem{}, err
	}
	if _, err := p.expect(tokDot, "."); err != nil {
		return SetItem{}, err
	}
	prop, err := p.expect(tokIdent, "property")
	if err != nil {
		return SetItem{}, err
	}
	if _, err := p.expect(tokEq, "="); err != nil {
		return SetItem{}, err
	}
	e, err := p.expr()
	if err != nil {
		return SetItem{}, err
	}
	return SetItem{Var: v.text, Prop: prop.text, E: e}, nil
}

func (p *parser) createStmt() (*CreateStmt, error) {
	if err := p.expectKw("CREATE"); err != nil {
		return nil, err
	}
	c := &CreateStmt{}
	for {
		pat, err := p.pathPattern()
		if err != nil {
			return nil, err
		}
		c.Patterns = append(c.Patterns, pat)
		if p.cur().kind != tokComma {
			break
		}
		p.next()
	}
	if p.cur().isKw("RETURN") {
		p.next()
		items, err := p.returnItems()
		if err != nil {
			return nil, err
		}
		c.Return = items
	}
	return c, nil
}

func (p *parser) callStmt() (*CallStmt, error) {
	if err := p.expectKw("CALL"); err != nil {
		return nil, err
	}
	var parts []string
	for {
		t, err := p.expect(tokIdent, "procedure name")
		if err != nil {
			return nil, err
		}
		parts = append(parts, t.text)
		if p.cur().kind != tokDot {
			break
		}
		p.next()
	}
	c := &CallStmt{Name: strings.Join(parts, ".")}
	if _, err := p.expect(tokLParen, "("); err != nil {
		return nil, err
	}
	if p.cur().kind != tokRParen {
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			c.Args = append(c.Args, e)
			if p.cur().kind != tokComma {
				break
			}
			p.next()
		}
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return nil, err
	}
	if p.cur().isKw("YIELD") {
		p.next()
		for {
			t, err := p.expect(tokIdent, "yield column")
			if err != nil {
				return nil, err
			}
			c.Yield = append(c.Yield, t.text)
			if p.cur().kind != tokComma {
				break
			}
			p.next()
		}
	}
	return c, nil
}

func (p *parser) returnItems() ([]ReturnItem, error) {
	var items []ReturnItem
	for {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		item := ReturnItem{E: e}
		if p.cur().isKw("AS") {
			p.next()
			t, err := p.expect(tokIdent, "alias")
			if err != nil {
				return nil, err
			}
			item.Alias = t.text
		}
		items = append(items, item)
		if p.cur().kind != tokComma {
			break
		}
		p.next()
	}
	return items, nil
}

// pathPattern parses (n)-[r]->(m)-... chains.
func (p *parser) pathPattern() (PathPattern, error) {
	var pat PathPattern
	n, err := p.nodePattern()
	if err != nil {
		return pat, err
	}
	pat.Nodes = append(pat.Nodes, n)
	for p.cur().kind == tokDash || p.cur().kind == tokArrowL {
		r, err := p.relPattern()
		if err != nil {
			return pat, err
		}
		n, err := p.nodePattern()
		if err != nil {
			return pat, err
		}
		pat.Rels = append(pat.Rels, r)
		pat.Nodes = append(pat.Nodes, n)
	}
	return pat, nil
}

func (p *parser) nodePattern() (NodePattern, error) {
	var np NodePattern
	if _, err := p.expect(tokLParen, "("); err != nil {
		return np, err
	}
	if p.cur().kind == tokIdent {
		np.Var = p.next().text
	}
	for p.cur().kind == tokColon {
		p.next()
		t, err := p.expect(tokIdent, "label")
		if err != nil {
			return np, err
		}
		np.Labels = append(np.Labels, t.text)
	}
	if p.cur().kind == tokLBrace {
		props, err := p.propMap()
		if err != nil {
			return np, err
		}
		np.Props = props
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return np, err
	}
	return np, nil
}

// relPattern parses -[r:T*1..3]-> / <-[r]- / -[r]-.
func (p *parser) relPattern() (RelPattern, error) {
	var rp RelPattern
	leftArrow := false
	switch p.cur().kind {
	case tokArrowL:
		leftArrow = true
		p.next()
	case tokDash:
		p.next()
	default:
		return rp, p.errf("expected relationship pattern")
	}
	if _, err := p.expect(tokLBracket, "["); err != nil {
		return rp, err
	}
	if p.cur().kind == tokIdent {
		rp.Var = p.next().text
	}
	if p.cur().kind == tokColon {
		p.next()
		t, err := p.expect(tokIdent, "relationship type")
		if err != nil {
			return rp, err
		}
		rp.Type = t.text
	}
	if p.cur().kind == tokStar {
		p.next()
		rp.VarHops = true
		rp.MinHops, rp.MaxHops = 1, 1
		if p.cur().kind == tokInt {
			n, _ := strconv.Atoi(p.next().text)
			rp.MinHops, rp.MaxHops = n, n
			if p.cur().kind == tokDotDot {
				p.next()
				m, err := p.expect(tokInt, "max hops")
				if err != nil {
					return rp, err
				}
				rp.MaxHops, _ = strconv.Atoi(m.text)
			}
		} else if p.cur().kind == tokDotDot {
			p.next()
			m, err := p.expect(tokInt, "max hops")
			if err != nil {
				return rp, err
			}
			rp.MinHops = 1
			rp.MaxHops, _ = strconv.Atoi(m.text)
		}
	}
	if p.cur().kind == tokLBrace {
		props, err := p.propMap()
		if err != nil {
			return rp, err
		}
		rp.Props = props
	}
	if _, err := p.expect(tokRBracket, "]"); err != nil {
		return rp, err
	}
	switch {
	case leftArrow:
		if _, err := p.expect(tokDash, "-"); err != nil {
			return rp, err
		}
		rp.Dir = model.Incoming
	case p.cur().kind == tokArrowR:
		p.next()
		rp.Dir = model.Outgoing
	case p.cur().kind == tokDash:
		p.next()
		rp.Dir = model.Both
	default:
		return rp, p.errf("expected -> or - after relationship")
	}
	return rp, nil
}

func (p *parser) propMap() (map[string]Expr, error) {
	if _, err := p.expect(tokLBrace, "{"); err != nil {
		return nil, err
	}
	props := map[string]Expr{}
	for p.cur().kind != tokRBrace {
		k, err := p.expect(tokIdent, "property key")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokColon, ":"); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		props[k.text] = e
		if p.cur().kind == tokComma {
			p.next()
		}
	}
	p.next() // }
	return props, nil
}

// --- expressions ------------------------------------------------------------

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().isKw("OR") {
		p.next()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = BinOp{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().isKw("AND") {
		p.next()
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = BinOp{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.cur().isKw("NOT") {
		p.next()
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return NotOp{E: e}, nil
	}
	return p.comparison()
}

func (p *parser) comparison() (Expr, error) {
	l, err := p.additive()
	if err != nil {
		return nil, err
	}
	var op string
	switch p.cur().kind {
	case tokEq:
		op = "="
	case tokNeq:
		op = "<>"
	case tokLt:
		op = "<"
	case tokLte:
		op = "<="
	case tokGt:
		op = ">"
	case tokGte:
		op = ">="
	default:
		return l, nil
	}
	p.next()
	r, err := p.additive()
	if err != nil {
		return nil, err
	}
	return BinOp{Op: op, L: l, R: r}, nil
}

func (p *parser) additive() (Expr, error) {
	l, err := p.primary()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokPlus {
		p.next()
		r, err := p.primary()
		if err != nil {
			return nil, err
		}
		l = BinOp{Op: "+", L: l, R: r}
	}
	return l, nil
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokInt:
		p.next()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", t.text)
		}
		return Lit{model.IntValue(n)}, nil
	case t.kind == tokFloat:
		p.next()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("bad float %q", t.text)
		}
		return Lit{model.FloatValue(f)}, nil
	case t.kind == tokString:
		p.next()
		return Lit{model.StringValue(t.text)}, nil
	case t.isKw("TRUE"):
		p.next()
		return Lit{model.BoolValue(true)}, nil
	case t.isKw("FALSE"):
		p.next()
		return Lit{model.BoolValue(false)}, nil
	case t.isKw("NULL"):
		p.next()
		return Lit{model.NullValue()}, nil
	case t.kind == tokParam:
		p.next()
		return Param{Name: t.text}, nil
	case t.isKw("COUNT"):
		p.next()
		if _, err := p.expect(tokLParen, "("); err != nil {
			return nil, err
		}
		var arg Expr
		if p.cur().kind == tokStar {
			p.next()
		} else {
			var err error
			arg, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return CountCall{Arg: arg}, nil
	case t.isKw("APPLICATION_TIME"):
		p.next()
		if err := p.expectKw("CONTAINED"); err != nil {
			return nil, err
		}
		if err := p.expectKw("IN"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokLParen, "("); err != nil {
			return nil, err
		}
		a, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokComma, ","); err != nil {
			return nil, err
		}
		b, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return AppTimeFilter{A: a, B: b}, nil
	case t.kind == tokIdent:
		// id(n), variable, or variable.prop.
		if t.text == "id" && p.peek().kind == tokLParen {
			p.next()
			p.next()
			v, err := p.expect(tokIdent, "variable")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen, ")"); err != nil {
				return nil, err
			}
			return IDCall{Var: v.text}, nil
		}
		p.next()
		if p.cur().kind == tokDot {
			p.next()
			prop, err := p.expect(tokIdent, "property")
			if err != nil {
				return nil, err
			}
			return PropAccess{Var: t.text, Prop: prop.text}, nil
		}
		return VarRef{Name: t.text}, nil
	case t.kind == tokLParen:
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errf("unexpected token %q in expression", t.text)
}
