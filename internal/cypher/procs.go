package cypher

import (
	"context"
	"fmt"
	"sort"

	"aion/internal/algo"
	"aion/internal/incremental"
	"aion/internal/model"
)

// Proc is a temporal procedure callable from Cypher (Sec 5.1: "Aion wraps
// the functionality exposed in Table 1 with temporal procedures"). Args are
// already-evaluated scalars. ctx carries the query's deadline; long-running
// procedures must observe it (the built-ins check it between snapshot steps
// and pass it through to the store APIs).
type Proc func(ctx context.Context, e *Engine, args []model.Value) (*Result, error)

func (e *Engine) execCall(ctx *execCtx, st *Statement) (*Result, error) {
	c := st.Call
	proc, ok := e.procs[c.Name]
	if !ok {
		return nil, fmt.Errorf("cypher: unknown procedure %q", c.Name)
	}
	args := make([]model.Value, len(c.Args))
	for i, ex := range c.Args {
		v, err := ctx.evalScalar(bindings{}, ex)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	res, err := proc(ctx.c, e, args)
	if err != nil {
		return nil, err
	}
	if len(c.Yield) > 0 {
		// Project only the yielded columns, in the requested order.
		idx := make([]int, 0, len(c.Yield))
		for _, y := range c.Yield {
			found := -1
			for i, col := range res.Columns {
				if col == y {
					found = i
					break
				}
			}
			if found < 0 {
				return nil, fmt.Errorf("cypher: procedure %s does not yield %q", c.Name, y)
			}
			idx = append(idx, found)
		}
		out := &Result{Columns: c.Yield}
		for _, row := range res.Rows {
			pr := make([]Val, len(idx))
			for i, j := range idx {
				pr[i] = row[j]
			}
			out.Rows = append(out.Rows, pr)
		}
		return out, nil
	}
	return res, nil
}

func argN(args []model.Value, n int, name string) error {
	if len(args) != n {
		return fmt.Errorf("cypher: %s expects %d arguments, got %d", name, n, len(args))
	}
	return nil
}

func dirOf(v model.Value) model.Direction {
	switch v.Str() {
	case "in", "IN", "incoming", "INCOMING":
		return model.Incoming
	case "both", "BOTH":
		return model.Both
	}
	return model.Outgoing
}

// registerBuiltins wires the Table 1 API and the incremental algorithms as
// procedures.
func registerBuiltins(e *Engine) {
	e.Register("aion.node", procNode)
	e.Register("aion.relationship", procRelationship)
	e.Register("aion.relationships", procRelationships)
	e.Register("aion.expand", procExpand)
	e.Register("aion.diff", procDiff)
	e.Register("aion.graph", procGraph)
	e.Register("aion.window", procWindow)
	e.Register("aion.stats", procStats)
	e.Register("aion.incremental.avg", procIncAvg)
	e.Register("aion.incremental.bfs", procIncBFS)
	e.Register("aion.incremental.pagerank", procIncPageRank)
	e.Register("aion.incremental.sssp", procIncSSSP)
	e.Register("aion.incremental.coloring", procIncColoring)
	e.Register("aion.temporal.earliestArrival", procEarliestArrival)
	e.Register("aion.temporal.latestDeparture", procLatestDeparture)
	registerGDS(e)
}

// procIncSSSP: aion.incremental.sssp(src, prop, start, end, step) ->
// (ts, reached, maxDistance): shortest-path state advanced by getDiff.
func procIncSSSP(ctx context.Context, e *Engine, args []model.Value) (*Result, error) {
	if err := argN(args, 5, "aion.incremental.sssp"); err != nil {
		return nil, err
	}
	src := model.NodeID(args[0].Int())
	prop := args[1].Str()
	start, end, step := model.Timestamp(args[2].Int()), model.Timestamp(args[3].Int()), model.Timestamp(args[4].Int())
	if step <= 0 {
		return nil, fmt.Errorf("cypher: step must be positive")
	}
	g, err := e.Sys.Aion.GraphAtContext(ctx, start)
	if err != nil {
		return nil, err
	}
	s := incremental.NewSSSP(g, src, prop)
	res := &Result{Columns: []string{"ts", "reached", "maxDistance"}}
	emit := func(ts model.Timestamp) error {
		reached := 0
		maxD := 0.0
		for i, d := range s.Distances() {
			if i%cancelStride == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			if d < 1e308 {
				reached++
				if d > maxD {
					maxD = d
				}
			}
		}
		res.Rows = append(res.Rows, []Val{
			ScalarVal(model.IntValue(int64(ts))),
			ScalarVal(model.IntValue(int64(reached))),
			ScalarVal(model.FloatValue(maxD)),
		})
		return nil
	}
	if err := emit(start); err != nil {
		return nil, err
	}
	prev := start
	for _, ts := range snapshotTimes(start+step, end, step) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		diff, err := e.Sys.Aion.GetDiffContext(ctx, prev+1, ts+1)
		if err != nil {
			return nil, err
		}
		for _, u := range diff {
			if err := g.Apply(u); err != nil {
				return nil, err
			}
		}
		s.ApplyDiff(g, diff)
		if err := emit(ts); err != nil {
			return nil, err
		}
		prev = ts
	}
	return res, nil
}

// procIncColoring: aion.incremental.coloring(start, end, step) ->
// (ts, colors): greedy colouring repaired incrementally between snapshots.
func procIncColoring(ctx context.Context, e *Engine, args []model.Value) (*Result, error) {
	if err := argN(args, 3, "aion.incremental.coloring"); err != nil {
		return nil, err
	}
	start, end, step := model.Timestamp(args[0].Int()), model.Timestamp(args[1].Int()), model.Timestamp(args[2].Int())
	if step <= 0 {
		return nil, fmt.Errorf("cypher: step must be positive")
	}
	g, err := e.Sys.Aion.GraphAtContext(ctx, start)
	if err != nil {
		return nil, err
	}
	c := incremental.NewColoring(g)
	res := &Result{Columns: []string{"ts", "colors"}}
	emit := func(ts model.Timestamp) {
		res.Rows = append(res.Rows, []Val{
			ScalarVal(model.IntValue(int64(ts))),
			ScalarVal(model.IntValue(int64(c.NumColors()))),
		})
	}
	emit(start)
	prev := start
	for _, ts := range snapshotTimes(start+step, end, step) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		diff, err := e.Sys.Aion.GetDiffContext(ctx, prev+1, ts+1)
		if err != nil {
			return nil, err
		}
		for _, u := range diff {
			if err := g.Apply(u); err != nil {
				return nil, err
			}
		}
		c.ApplyDiff(g, diff)
		emit(ts)
		prev = ts
	}
	return res, nil
}

// procNode: aion.node(id, start, end) -> (node, validFrom, validTo).
func procNode(ctx context.Context, e *Engine, args []model.Value) (*Result, error) {
	if err := argN(args, 3, "aion.node"); err != nil {
		return nil, err
	}
	ns, err := e.Sys.Aion.GetNodeContext(ctx, model.NodeID(args[0].Int()),
		model.Timestamp(args[1].Int()), model.Timestamp(args[2].Int()))
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: []string{"node", "validFrom", "validTo"}}
	for i, n := range ns {
		if i%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		res.Rows = append(res.Rows, []Val{NodeVal(n),
			ScalarVal(model.IntValue(int64(n.Valid.Start))),
			ScalarVal(model.IntValue(int64(n.Valid.End)))})
	}
	return res, nil
}

// procRelationship: aion.relationship(id, start, end).
func procRelationship(ctx context.Context, e *Engine, args []model.Value) (*Result, error) {
	if err := argN(args, 3, "aion.relationship"); err != nil {
		return nil, err
	}
	rs, err := e.Sys.Aion.GetRelationshipContext(ctx, model.RelID(args[0].Int()),
		model.Timestamp(args[1].Int()), model.Timestamp(args[2].Int()))
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: []string{"rel", "validFrom", "validTo"}}
	for i, r := range rs {
		if i%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		res.Rows = append(res.Rows, []Val{RelVal(r),
			ScalarVal(model.IntValue(int64(r.Valid.Start))),
			ScalarVal(model.IntValue(int64(r.Valid.End)))})
	}
	return res, nil
}

// procRelationships: aion.relationships(nodeId, dir, start, end).
func procRelationships(ctx context.Context, e *Engine, args []model.Value) (*Result, error) {
	if err := argN(args, 4, "aion.relationships"); err != nil {
		return nil, err
	}
	hists, err := e.Sys.Aion.GetRelationshipsContext(ctx, model.NodeID(args[0].Int()), dirOf(args[1]),
		model.Timestamp(args[2].Int()), model.Timestamp(args[3].Int()))
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: []string{"rel", "validFrom", "validTo"}}
	scanned := 0
	for _, hist := range hists {
		for _, r := range hist {
			if scanned++; scanned%cancelStride == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			res.Rows = append(res.Rows, []Val{RelVal(r),
				ScalarVal(model.IntValue(int64(r.Valid.Start))),
				ScalarVal(model.IntValue(int64(r.Valid.End)))})
		}
	}
	return res, nil
}

// procExpand: aion.expand(nodeId, dir, hops, ts) -> (hop, node).
func procExpand(ctx context.Context, e *Engine, args []model.Value) (*Result, error) {
	if err := argN(args, 4, "aion.expand"); err != nil {
		return nil, err
	}
	hops, err := e.Sys.Aion.ExpandContext(ctx, model.NodeID(args[0].Int()), dirOf(args[1]),
		int(args[2].Int()), model.Timestamp(args[3].Int()))
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: []string{"hop", "node"}}
	scanned := 0
	for h, ns := range hops {
		for _, n := range ns {
			if scanned++; scanned%cancelStride == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			res.Rows = append(res.Rows, []Val{
				ScalarVal(model.IntValue(int64(h + 1))), NodeVal(n)})
		}
	}
	return res, nil
}

// procDiff: aion.diff(start, end) -> (ts, op, entity, id).
func procDiff(ctx context.Context, e *Engine, args []model.Value) (*Result, error) {
	if err := argN(args, 2, "aion.diff"); err != nil {
		return nil, err
	}
	diff, err := e.Sys.Aion.GetDiffContext(ctx, model.Timestamp(args[0].Int()), model.Timestamp(args[1].Int()))
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: []string{"ts", "op", "entity", "id"}}
	for i, u := range diff {
		if i%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		entity, id := "node", int64(u.NodeID)
		if !u.Kind.IsNodeOp() {
			entity, id = "relationship", int64(u.RelID)
		}
		res.Rows = append(res.Rows, []Val{
			ScalarVal(model.IntValue(int64(u.TS))),
			ScalarVal(model.StringValue(u.Kind.String())),
			ScalarVal(model.StringValue(entity)),
			ScalarVal(model.IntValue(id)),
		})
	}
	return res, nil
}

// procGraph: aion.graph(ts) -> (nodes, rels); materializes a snapshot and
// stores it in the GraphStore for subsequent queries.
func procGraph(ctx context.Context, e *Engine, args []model.Value) (*Result, error) {
	if err := argN(args, 1, "aion.graph"); err != nil {
		return nil, err
	}
	g, err := e.Sys.Aion.GraphAtContext(ctx, model.Timestamp(args[0].Int()))
	if err != nil {
		return nil, err
	}
	e.Sys.Aion.TimeStore().GraphStore().Put(g)
	return &Result{
		Columns: []string{"nodes", "rels"},
		Rows: [][]Val{{
			ScalarVal(model.IntValue(int64(g.NodeCount()))),
			ScalarVal(model.IntValue(int64(g.RelCount()))),
		}},
	}, nil
}

// procWindow: aion.window(start, end) -> (nodes, rels).
func procWindow(ctx context.Context, e *Engine, args []model.Value) (*Result, error) {
	if err := argN(args, 2, "aion.window"); err != nil {
		return nil, err
	}
	g, err := e.Sys.Aion.GetWindowContext(ctx, model.Timestamp(args[0].Int()), model.Timestamp(args[1].Int()))
	if err != nil {
		return nil, err
	}
	return &Result{
		Columns: []string{"nodes", "rels"},
		Rows: [][]Val{{
			ScalarVal(model.IntValue(int64(g.NodeCount()))),
			ScalarVal(model.IntValue(int64(g.RelCount()))),
		}},
	}, nil
}

// procStats: aion.stats() -> planner statistics.
func procStats(ctx context.Context, e *Engine, args []model.Value) (*Result, error) {
	st := e.Sys.Aion.Stats()
	lineage, timeStore := e.Sys.Aion.PlannerDecisions()
	return &Result{
		Columns: []string{"nodes", "rels", "avgDegree", "lineageQueries", "timestoreQueries"},
		Rows: [][]Val{{
			ScalarVal(model.IntValue(st.Nodes())),
			ScalarVal(model.IntValue(st.Rels())),
			ScalarVal(model.FloatValue(st.AvgDegree())),
			ScalarVal(model.IntValue(lineage)),
			ScalarVal(model.IntValue(timeStore)),
		}},
	}, nil
}

// snapshotTimes lists the timestamps start, start+step, ..., end.
func snapshotTimes(start, end, step model.Timestamp) []model.Timestamp {
	var out []model.Timestamp
	for ts := start; ts <= end; ts += step {
		out = append(out, ts)
	}
	return out
}

// procIncAvg: aion.incremental.avg(prop, start, end, step) -> (ts, avg,
// count). The aggregate is seeded at start and advanced with getDiff
// between consecutive snapshots.
func procIncAvg(ctx context.Context, e *Engine, args []model.Value) (*Result, error) {
	if err := argN(args, 4, "aion.incremental.avg"); err != nil {
		return nil, err
	}
	prop := args[0].Str()
	start, end, step := model.Timestamp(args[1].Int()), model.Timestamp(args[2].Int()), model.Timestamp(args[3].Int())
	if step <= 0 {
		return nil, fmt.Errorf("cypher: step must be positive")
	}
	g, err := e.Sys.Aion.GraphAtContext(ctx, start)
	if err != nil {
		return nil, err
	}
	avg := incremental.NewAvg(prop)
	avg.InitFrom(g)
	res := &Result{Columns: []string{"ts", "avg", "count"}}
	emit := func(ts model.Timestamp) {
		res.Rows = append(res.Rows, []Val{
			ScalarVal(model.IntValue(int64(ts))),
			ScalarVal(model.FloatValue(avg.Value())),
			ScalarVal(model.IntValue(avg.Count())),
		})
	}
	emit(start)
	prev := start
	for _, ts := range snapshotTimes(start+step, end, step) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		diff, err := e.Sys.Aion.GetDiffContext(ctx, prev+1, ts+1)
		if err != nil {
			return nil, err
		}
		avg.ApplyDiff(diff)
		emit(ts)
		prev = ts
	}
	return res, nil
}

// procIncBFS: aion.incremental.bfs(src, start, end, step) -> (ts, reached).
func procIncBFS(ctx context.Context, e *Engine, args []model.Value) (*Result, error) {
	if err := argN(args, 4, "aion.incremental.bfs"); err != nil {
		return nil, err
	}
	src := model.NodeID(args[0].Int())
	start, end, step := model.Timestamp(args[1].Int()), model.Timestamp(args[2].Int()), model.Timestamp(args[3].Int())
	if step <= 0 {
		return nil, fmt.Errorf("cypher: step must be positive")
	}
	g, err := e.Sys.Aion.GraphAtContext(ctx, start)
	if err != nil {
		return nil, err
	}
	bfs := incremental.NewBFS(g, src)
	res := &Result{Columns: []string{"ts", "reached"}}
	emit := func(ts model.Timestamp) error {
		reached := 0
		for i, l := range bfs.Levels() {
			if i%cancelStride == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			if l >= 0 {
				reached++
			}
		}
		res.Rows = append(res.Rows, []Val{
			ScalarVal(model.IntValue(int64(ts))),
			ScalarVal(model.IntValue(int64(reached))),
		})
		return nil
	}
	if err := emit(start); err != nil {
		return nil, err
	}
	prev := start
	for _, ts := range snapshotTimes(start+step, end, step) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		diff, err := e.Sys.Aion.GetDiffContext(ctx, prev+1, ts+1)
		if err != nil {
			return nil, err
		}
		for _, u := range diff {
			if err := g.Apply(u); err != nil {
				return nil, err
			}
		}
		bfs.ApplyDiff(g, diff)
		if err := emit(ts); err != nil {
			return nil, err
		}
		prev = ts
	}
	return res, nil
}

// procIncPageRank: aion.incremental.pagerank(start, end, step) ->
// (ts, iterations, topNode, topRank).
func procIncPageRank(ctx context.Context, e *Engine, args []model.Value) (*Result, error) {
	if err := argN(args, 3, "aion.incremental.pagerank"); err != nil {
		return nil, err
	}
	start, end, step := model.Timestamp(args[0].Int()), model.Timestamp(args[1].Int()), model.Timestamp(args[2].Int())
	if step <= 0 {
		return nil, fmt.Errorf("cypher: step must be positive")
	}
	g, err := e.Sys.Aion.GraphAtContext(ctx, start)
	if err != nil {
		return nil, err
	}
	pr := incremental.NewPageRank(algo.PageRankOptions{})
	res := &Result{Columns: []string{"ts", "iterations", "topNode", "topRank"}}
	emit := func(ts model.Timestamp, ranks map[model.NodeID]float64) error {
		var topID model.NodeID = -1
		var topRank float64
		ids := make([]model.NodeID, 0, len(ranks))
		scanned := 0
		for id := range ranks {
			if scanned++; scanned%cancelStride == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for i, id := range ids {
			if i%cancelStride == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			if ranks[id] > topRank {
				topID, topRank = id, ranks[id]
			}
		}
		res.Rows = append(res.Rows, []Val{
			ScalarVal(model.IntValue(int64(ts))),
			ScalarVal(model.IntValue(int64(pr.LastIterations))),
			ScalarVal(model.IntValue(int64(topID))),
			ScalarVal(model.FloatValue(topRank)),
		})
		return nil
	}
	if err := emit(start, pr.Run(g)); err != nil {
		return nil, err
	}
	prev := start
	for _, ts := range snapshotTimes(start+step, end, step) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		diff, err := e.Sys.Aion.GetDiffContext(ctx, prev+1, ts+1)
		if err != nil {
			return nil, err
		}
		for _, u := range diff {
			if err := g.Apply(u); err != nil {
				return nil, err
			}
		}
		if err := emit(ts, pr.Run(g)); err != nil {
			return nil, err
		}
		prev = ts
	}
	return res, nil
}

// procEarliestArrival: aion.temporal.earliestArrival(src, startTime, from,
// to) -> (node, arrival) over the temporal graph in [from, to).
func procEarliestArrival(ctx context.Context, e *Engine, args []model.Value) (*Result, error) {
	if err := argN(args, 4, "aion.temporal.earliestArrival"); err != nil {
		return nil, err
	}
	tg, err := e.Sys.Aion.GetTemporalGraphContext(ctx, model.Timestamp(args[2].Int()), model.Timestamp(args[3].Int()))
	if err != nil {
		return nil, err
	}
	arr, _ := algo.EarliestArrival(tg, model.NodeID(args[0].Int()), model.Timestamp(args[1].Int()))
	res := &Result{Columns: []string{"node", "arrival"}}
	ids := make([]model.NodeID, 0, len(arr))
	scanned := 0
	for id := range arr {
		if scanned++; scanned%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for i, id := range ids {
		if i%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		res.Rows = append(res.Rows, []Val{
			ScalarVal(model.IntValue(int64(id))),
			ScalarVal(model.IntValue(int64(arr[id]))),
		})
	}
	return res, nil
}

// procLatestDeparture: aion.temporal.latestDeparture(tgt, deadline, from,
// to) -> (node, departure).
func procLatestDeparture(ctx context.Context, e *Engine, args []model.Value) (*Result, error) {
	if err := argN(args, 4, "aion.temporal.latestDeparture"); err != nil {
		return nil, err
	}
	tg, err := e.Sys.Aion.GetTemporalGraphContext(ctx, model.Timestamp(args[2].Int()), model.Timestamp(args[3].Int()))
	if err != nil {
		return nil, err
	}
	dep, _ := algo.LatestDeparture(tg, model.NodeID(args[0].Int()), model.Timestamp(args[1].Int()))
	res := &Result{Columns: []string{"node", "departure"}}
	ids := make([]model.NodeID, 0, len(dep))
	scanned := 0
	for id := range dep {
		if scanned++; scanned%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for i, id := range ids {
		if i%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		res.Rows = append(res.Rows, []Val{
			ScalarVal(model.IntValue(int64(id))),
			ScalarVal(model.IntValue(int64(dep[id]))),
		})
	}
	return res, nil
}
