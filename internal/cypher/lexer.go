// Package cypher implements the temporal Cypher subset of Sec 3: the USE
// clause with FOR SYSTEM_TIME interval specifiers (AS OF / FROM..TO /
// BETWEEN..AND / CONTAINED IN), MATCH over node and relationship patterns
// including variable-length hops, WHERE with id() predicates and
// APPLICATION_TIME filters, RETURN, CREATE / SET / DELETE write statements,
// and CALL for Aion's temporal procedures. The paper parses with javaCC;
// this implementation uses a hand-written lexer and recursive-descent
// parser producing an operator plan executed against the hybrid store.
package cypher

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokInt
	tokFloat
	tokString
	tokParam  // $name
	tokLParen // (
	tokRParen
	tokLBracket // [
	tokRBracket
	tokLBrace // {
	tokRBrace
	tokColon
	tokComma
	tokDot
	tokDotDot // ..
	tokDash   // -
	tokArrowR // ->
	tokArrowL // <-
	tokStar
	tokEq
	tokNeq // <>
	tokLt
	tokLte
	tokGt
	tokGte
	tokPlus
)

var keywords = map[string]bool{
	"USE": true, "GDB": true, "FOR": true, "SYSTEM_TIME": true, "AS": true,
	"OF": true, "FROM": true, "TO": true, "BETWEEN": true, "AND": true,
	"CONTAINED": true, "IN": true, "MATCH": true, "WHERE": true,
	"RETURN": true, "LIMIT": true, "CREATE": true, "SET": true,
	"DELETE": true, "DETACH": true, "CALL": true, "YIELD": true, "OR": true,
	"NOT": true, "TRUE": true, "FALSE": true, "NULL": true,
	"APPLICATION_TIME": true, "COUNT": true, "ORDER": true, "BY": true,
	"DESC": true, "ASC": true,
}

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) isKw(kw string) bool { return t.kind == tokKeyword && t.text == kw }

// lex tokenizes a query. Keywords are case-insensitive and normalized to
// upper case; identifiers keep their case.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '/' && i+1 < n && input[i+1] == '/':
			for i < n && input[i] != '\n' {
				i++
			}
		case unicode.IsDigit(rune(c)):
			start := i
			isFloat := false
			for i < n && (unicode.IsDigit(rune(input[i])) || input[i] == '.') {
				if input[i] == '.' {
					if i+1 < n && input[i+1] == '.' {
						break // ".." range operator
					}
					isFloat = true
				}
				i++
			}
			kind := tokInt
			if isFloat {
				kind = tokFloat
			}
			toks = append(toks, token{kind, input[start:i], start})
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < n && (unicode.IsLetter(rune(input[i])) || unicode.IsDigit(rune(input[i])) || input[i] == '_') {
				i++
			}
			word := input[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{tokKeyword, up, start})
			} else {
				toks = append(toks, token{tokIdent, word, start})
			}
		case c == '\'' || c == '"':
			quote := c
			i++
			var sb strings.Builder
			for i < n && input[i] != quote {
				if input[i] == '\\' && i+1 < n {
					i++
				}
				sb.WriteByte(input[i])
				i++
			}
			if i >= n {
				return nil, fmt.Errorf("cypher: unterminated string at %d", i)
			}
			i++
			toks = append(toks, token{tokString, sb.String(), i})
		case c == '$':
			start := i
			i++
			for i < n && (unicode.IsLetter(rune(input[i])) || unicode.IsDigit(rune(input[i])) || input[i] == '_') {
				i++
			}
			if i == start+1 {
				return nil, fmt.Errorf("cypher: empty parameter at %d", start)
			}
			toks = append(toks, token{tokParam, input[start+1 : i], start})
		default:
			two := ""
			if i+1 < n {
				two = input[i : i+2]
			}
			switch {
			case two == "->":
				toks = append(toks, token{tokArrowR, two, i})
				i += 2
			case two == "<-":
				toks = append(toks, token{tokArrowL, two, i})
				i += 2
			case two == "<>":
				toks = append(toks, token{tokNeq, two, i})
				i += 2
			case two == "<=":
				toks = append(toks, token{tokLte, two, i})
				i += 2
			case two == ">=":
				toks = append(toks, token{tokGte, two, i})
				i += 2
			case two == "..":
				toks = append(toks, token{tokDotDot, two, i})
				i += 2
			default:
				kind, ok := singleTok(c)
				if !ok {
					return nil, fmt.Errorf("cypher: unexpected character %q at %d", c, i)
				}
				toks = append(toks, token{kind, string(c), i})
				i++
			}
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func singleTok(c byte) (tokenKind, bool) {
	switch c {
	case '(':
		return tokLParen, true
	case ')':
		return tokRParen, true
	case '[':
		return tokLBracket, true
	case ']':
		return tokRBracket, true
	case '{':
		return tokLBrace, true
	case '}':
		return tokRBrace, true
	case ':':
		return tokColon, true
	case ',':
		return tokComma, true
	case '.':
		return tokDot, true
	case '-':
		return tokDash, true
	case '*':
		return tokStar, true
	case '=':
		return tokEq, true
	case '<':
		return tokLt, true
	case '>':
		return tokGt, true
	case '+':
		return tokPlus, true
	}
	return 0, false
}
