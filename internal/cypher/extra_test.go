package cypher

import (
	"testing"

	"aion/internal/model"
)

func TestUndirectedPattern(t *testing.T) {
	e := seed(t)
	// Undirected match finds the KNOWS edge from either endpoint.
	res := mustQuery(t, e, `MATCH (b {name: 'bob'})-[r:KNOWS]-(x) RETURN x.name ORDER BY x.name`, nil)
	if len(res.Rows) != 2 {
		t.Fatalf("undirected rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].S.Str() != "alice" || res.Rows[1][0].S.Str() != "berlin" {
		t.Errorf("undirected neighbours: %v", res.Rows)
	}
}

func TestRelPropertyPattern(t *testing.T) {
	e := newEngine(t)
	mustQuery(t, e, `CREATE (a:N)-[:R {k: 1}]->(b:N)`, nil)
	mustQuery(t, e, `CREATE (c:N)-[:R {k: 2}]->(d:N)`, nil)
	res := mustQuery(t, e, `MATCH (a)-[r:R {k: 2}]->(b) RETURN id(a)`, nil)
	if len(res.Rows) != 1 || res.Rows[0][0].S.Int() != 2 {
		t.Errorf("rel prop filter: %v", res.Rows)
	}
}

func TestNodePropertyPatternWithParam(t *testing.T) {
	e := seed(t)
	res := mustQuery(t, e, `MATCH (n:Person {name: $who}) RETURN id(n)`,
		map[string]model.Value{"who": model.StringValue("bob")})
	if len(res.Rows) != 1 {
		t.Errorf("param in node pattern: %v", res.Rows)
	}
}

func TestOrderByDescAndMultiKey(t *testing.T) {
	e := newEngine(t)
	mustQuery(t, e, `CREATE (a:V {g: 1, v: 10}), (b:V {g: 1, v: 20}), (c:V {g: 2, v: 5})`, nil)
	res := mustQuery(t, e, `MATCH (n:V) RETURN n.g, n.v ORDER BY n.g DESC, n.v ASC`, nil)
	if res.Rows[0][0].S.Int() != 2 {
		t.Errorf("first group: %v", res.Rows[0])
	}
	if res.Rows[1][1].S.Int() != 10 || res.Rows[2][1].S.Int() != 20 {
		t.Errorf("secondary ordering: %v", res.Rows)
	}
}

func TestContainedInWindowSemantics(t *testing.T) {
	e := newEngine(t)
	mustQuery(t, e, `CREATE (a:W {name: 'early'})`, nil)  // ts 1
	mustQuery(t, e, `CREATE (b:W {name: 'middle'})`, nil) // ts 2
	mustQuery(t, e, `MATCH (a:W {name: 'early'}) DELETE a`, nil)
	mustQuery(t, e, `CREATE (c:W {name: 'late'})`, nil) // ts 4
	e.Sys.Aion.WaitSync()
	// CONTAINED IN (2, 3): window [2, 4) — "early" was live at ts 2,
	// "middle" created at 2, "late" not yet.
	res := mustQuery(t, e, `USE GDB FOR SYSTEM_TIME CONTAINED IN (2, 3) MATCH (n:W) RETURN count(*)`, nil)
	if res.Rows[0][0].S.Int() != 2 {
		t.Errorf("window count = %v", res.Rows[0][0])
	}
}

func TestTemporalPathProceduresViaCypher(t *testing.T) {
	e := newEngine(t)
	// Two airports and one flight: create, then delete the rel to give it
	// an arrival time.
	mustQuery(t, e, `CREATE (a:AP), (b:AP)`, nil)
	mustQuery(t, e, `MATCH (a), (b) WHERE id(a) = 0 AND id(b) = 1 CREATE (a)-[:F]->(b)`, nil) // dep ts 2
	mustQuery(t, e, `MATCH (a)-[r:F]->(b) DELETE r`, nil)                                     // arr ts 3
	e.Sys.Aion.WaitSync()
	res := mustQuery(t, e, `CALL aion.temporal.earliestArrival(0, 0, 1, 10)`, nil)
	arr := map[int64]int64{}
	for _, row := range res.Rows {
		arr[row[0].S.Int()] = row[1].S.Int()
	}
	if arr[1] != 3 {
		t.Errorf("arrival at 1 = %d, want 3", arr[1])
	}
	res = mustQuery(t, e, `CALL aion.temporal.latestDeparture(1, 10, 1, 10)`, nil)
	dep := map[int64]int64{}
	for _, row := range res.Rows {
		dep[row[0].S.Int()] = row[1].S.Int()
	}
	if dep[0] != 2 {
		t.Errorf("departure from 0 = %d, want 2", dep[0])
	}
}

func TestStringEscapesAndComments(t *testing.T) {
	e := newEngine(t)
	mustQuery(t, e, `CREATE (n:S {v: 'it\'s'}) // trailing comment`, nil)
	res := mustQuery(t, e, `MATCH (n:S) RETURN n.v`, nil)
	if res.Rows[0][0].S.Str() != "it's" {
		t.Errorf("escape: %v", res.Rows[0][0])
	}
}

func TestDoubleQuotedStrings(t *testing.T) {
	e := newEngine(t)
	mustQuery(t, e, `CREATE (n:S {v: "double"})`, nil)
	res := mustQuery(t, e, `MATCH (n:S) WHERE n.v = "double" RETURN count(*)`, nil)
	if res.Rows[0][0].S.Int() != 1 {
		t.Error("double-quoted strings")
	}
}

func TestArithmeticInReturn(t *testing.T) {
	e := newEngine(t)
	mustQuery(t, e, `CREATE (n:A {x: 3})`, nil)
	res := mustQuery(t, e, `MATCH (n:A) RETURN n.x + 4 AS sum, n.x + 0.5 AS f, 'v' + 'w' AS s`, nil)
	if res.Rows[0][0].S.Int() != 7 {
		t.Errorf("int add: %v", res.Rows[0][0])
	}
	if res.Rows[0][1].S.Float() != 3.5 {
		t.Errorf("float add: %v", res.Rows[0][1])
	}
	if res.Rows[0][2].S.Str() != "vw" {
		t.Errorf("string concat: %v", res.Rows[0][2])
	}
}

func TestSharedVarJoinAcrossPatterns(t *testing.T) {
	e := newEngine(t)
	mustQuery(t, e, `CREATE (a:J)-[:X]->(b:J), (c:J)`, nil)
	mustQuery(t, e, `MATCH (b:J), (c:J) WHERE id(b) = 1 AND id(c) = 2 CREATE (b)-[:Y]->(c)`, nil)
	// The shared variable m joins the two patterns.
	res := mustQuery(t, e, `MATCH (a)-[:X]->(m), (m)-[:Y]->(c) RETURN id(a), id(m), id(c)`, nil)
	if len(res.Rows) != 1 {
		t.Fatalf("join rows = %d", len(res.Rows))
	}
	if res.Rows[0][1].S.Int() != 1 {
		t.Errorf("join binding: %v", res.Rows[0])
	}
}

func TestUnboundVariableErrors(t *testing.T) {
	e := seed(t)
	if _, err := e.Query(`MATCH (n) RETURN missing.prop`, nil); err == nil {
		t.Error("unbound property access must fail")
	}
	if _, err := e.Query(`MATCH (n) WHERE id(q) = 1 RETURN n`, nil); err == nil {
		t.Error("unbound id() must fail")
	}
	if _, err := e.Query(`MATCH (n) RETURN n.p LIMIT 2 `, nil); err != nil {
		t.Errorf("trailing space should parse: %v", err)
	}
}

func TestMissingParamError(t *testing.T) {
	e := seed(t)
	if _, err := e.Query(`MATCH (n) WHERE n.name = $nope RETURN n`, nil); err == nil {
		t.Error("missing parameter must fail")
	}
}

func TestIncrementalSSSPAndColoringProcedures(t *testing.T) {
	e := newEngine(t)
	mustQuery(t, e, `CREATE (a:G)-[:R {w: 2}]->(b:G)`, nil)
	mustQuery(t, e, `MATCH (b:G), (a:G) WHERE id(b) = 1 AND id(a) = 0 CREATE (b)-[:R {w: 3}]->(c:G)`, nil)
	e.Sys.Aion.WaitSync()
	maxTS := int64(e.Sys.Host.Clock())
	res := mustQuery(t, e, `CALL aion.incremental.sssp(0, 'w', 1, $end, 1)`,
		params(t, "end", maxTS))
	if len(res.Rows) != int(maxTS) {
		t.Fatalf("sssp series rows = %d", len(res.Rows))
	}
	last := res.Rows[len(res.Rows)-1]
	if last[1].S.Int() != 3 { // src + 2 reachable
		t.Errorf("reached = %v", last[1])
	}
	if last[2].S.Float() != 5 { // 2 + 3
		t.Errorf("maxDistance = %v", last[2])
	}
	res = mustQuery(t, e, `CALL aion.incremental.coloring(1, $end, 1)`,
		params(t, "end", maxTS))
	if len(res.Rows) != int(maxTS) {
		t.Fatalf("coloring series rows = %d", len(res.Rows))
	}
	if res.Rows[len(res.Rows)-1][1].S.Int() < 2 {
		t.Errorf("colors = %v", res.Rows[len(res.Rows)-1][1])
	}
}
