package cypher

import (
	"context"
	"sort"

	"aion/internal/algo"
	"aion/internal/csr"
	"aion/internal/model"
)

// GDS-style analytics procedures (Sec 5.1: "Aion allows the creation of
// static CSRs, known as graph projections, to exploit the efficient
// parallel versions of the GDS library's algorithms"). Each procedure
// materializes the snapshot at the requested timestamp, projects it to a
// CSR, runs the parallel algorithm, and streams the result rows.

func init() { /* registered from registerBuiltins */ }

// cancelStride is how many result rows pass between cooperative ctx checks
// in the row-assembly loops below: the projections and algorithms bound
// their own work, but result sets are O(nodes) and must still observe a
// deadline that fires mid-assembly.
const cancelStride = 1024

func registerGDS(e *Engine) {
	e.Register("aion.gds.pagerank", procGDSPageRank)
	e.Register("aion.gds.wcc", procGDSWCC)
	e.Register("aion.gds.triangleCount", procGDSTriangles)
	e.Register("aion.gds.bfs", procGDSBFS)
	e.Register("aion.gds.sssp", procGDSSSSP)
	e.Register("aion.gds.lcc", procGDSLCC)
}

// procGDSPageRank: aion.gds.pagerank(ts, topK) -> (node, rank) sorted by
// rank descending.
func procGDSPageRank(ctx context.Context, e *Engine, args []model.Value) (*Result, error) {
	if err := argN(args, 2, "aion.gds.pagerank"); err != nil {
		return nil, err
	}
	g, err := e.Sys.Aion.GraphAtContext(ctx, model.Timestamp(args[0].Int()))
	if err != nil {
		return nil, err
	}
	c := csr.Build(g, csr.Options{Parallel: true})
	ranks, _ := algo.PageRank(c, algo.PageRankOptions{})
	type nr struct {
		id   model.NodeID
		rank float64
	}
	rows := make([]nr, 0, c.N)
	for i, sid := range c.Dense.ToSparse {
		if i%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		rows = append(rows, nr{sid, ranks[i]})
	}
	sort.Slice(rows, func(a, b int) bool {
		if rows[a].rank != rows[b].rank {
			return rows[a].rank > rows[b].rank
		}
		return rows[a].id < rows[b].id
	})
	k := int(args[1].Int())
	if k > 0 && k < len(rows) {
		rows = rows[:k]
	}
	res := &Result{Columns: []string{"node", "rank"}}
	for i, r := range rows {
		if i%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		res.Rows = append(res.Rows, []Val{
			ScalarVal(model.IntValue(int64(r.id))),
			ScalarVal(model.FloatValue(r.rank)),
		})
	}
	return res, nil
}

// procGDSWCC: aion.gds.wcc(ts) -> (component, size) sorted by size desc.
func procGDSWCC(ctx context.Context, e *Engine, args []model.Value) (*Result, error) {
	if err := argN(args, 1, "aion.gds.wcc"); err != nil {
		return nil, err
	}
	g, err := e.Sys.Aion.GraphAtContext(ctx, model.Timestamp(args[0].Int()))
	if err != nil {
		return nil, err
	}
	comp := algo.WCC(g)
	sizes := map[int32]int64{}
	for i, c := range comp {
		if i%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if c >= 0 {
			sizes[c]++
		}
	}
	type cs struct {
		id   int32
		size int64
	}
	var rows []cs
	scanned := 0
	for id, n := range sizes {
		if scanned++; scanned%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		rows = append(rows, cs{id, n})
	}
	sort.Slice(rows, func(a, b int) bool {
		if rows[a].size != rows[b].size {
			return rows[a].size > rows[b].size
		}
		return rows[a].id < rows[b].id
	})
	res := &Result{Columns: []string{"component", "size"}}
	for i, r := range rows {
		if i%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		res.Rows = append(res.Rows, []Val{
			ScalarVal(model.IntValue(int64(r.id))),
			ScalarVal(model.IntValue(r.size)),
		})
	}
	return res, nil
}

// procGDSTriangles: aion.gds.triangleCount(ts) -> (triangles).
func procGDSTriangles(ctx context.Context, e *Engine, args []model.Value) (*Result, error) {
	if err := argN(args, 1, "aion.gds.triangleCount"); err != nil {
		return nil, err
	}
	g, err := e.Sys.Aion.GraphAtContext(ctx, model.Timestamp(args[0].Int()))
	if err != nil {
		return nil, err
	}
	n := algo.TriangleCount(csr.Build(g, csr.Options{Parallel: true}))
	return &Result{
		Columns: []string{"triangles"},
		Rows:    [][]Val{{ScalarVal(model.IntValue(n))}},
	}, nil
}

// procGDSBFS: aion.gds.bfs(src, ts) -> (node, level) for reachable nodes.
func procGDSBFS(ctx context.Context, e *Engine, args []model.Value) (*Result, error) {
	if err := argN(args, 2, "aion.gds.bfs"); err != nil {
		return nil, err
	}
	g, err := e.Sys.Aion.GraphAtContext(ctx, model.Timestamp(args[1].Int()))
	if err != nil {
		return nil, err
	}
	levels := algo.BFS(g, model.NodeID(args[0].Int()))
	res := &Result{Columns: []string{"node", "level"}}
	for id, l := range levels {
		if id%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if l >= 0 {
			res.Rows = append(res.Rows, []Val{
				ScalarVal(model.IntValue(int64(id))),
				ScalarVal(model.IntValue(int64(l))),
			})
		}
	}
	return res, nil
}

// procGDSSSSP: aion.gds.sssp(src, ts, weightProp) -> (node, distance).
func procGDSSSSP(ctx context.Context, e *Engine, args []model.Value) (*Result, error) {
	if err := argN(args, 3, "aion.gds.sssp"); err != nil {
		return nil, err
	}
	g, err := e.Sys.Aion.GraphAtContext(ctx, model.Timestamp(args[1].Int()))
	if err != nil {
		return nil, err
	}
	dist := algo.SSSP(g, model.NodeID(args[0].Int()), args[2].Str())
	res := &Result{Columns: []string{"node", "distance"}}
	for id, d := range dist {
		if id%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if d < 1e308 { // reachable
			res.Rows = append(res.Rows, []Val{
				ScalarVal(model.IntValue(int64(id))),
				ScalarVal(model.FloatValue(d)),
			})
		}
	}
	return res, nil
}

// procGDSLCC: aion.gds.lcc(nodeId, ts) -> (coefficient).
func procGDSLCC(ctx context.Context, e *Engine, args []model.Value) (*Result, error) {
	if err := argN(args, 2, "aion.gds.lcc"); err != nil {
		return nil, err
	}
	g, err := e.Sys.Aion.GraphAtContext(ctx, model.Timestamp(args[1].Int()))
	if err != nil {
		return nil, err
	}
	lcc := algo.LocalClusteringCoefficient(g, model.NodeID(args[0].Int()))
	return &Result{
		Columns: []string{"coefficient"},
		Rows:    [][]Val{{ScalarVal(model.FloatValue(lcc))}},
	}, nil
}
