package cypher

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestConcurrentWritersAndReaders runs write statements from several
// goroutines (serialized by the engine's single-writer lock) while readers
// query concurrently. Run under -race this checks the engine's concurrency
// contract directly, without the bolt layer in between.
func TestConcurrentWritersAndReaders(t *testing.T) {
	e := newEngine(t)
	const (
		writers   = 4
		readers   = 4
		perWriter = 30
	)
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for wi := 0; wi < writers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				q := fmt.Sprintf("CREATE (n:C {w: %d, i: %d})", wi, i)
				if _, err := e.Query(q, nil); err != nil {
					errs <- fmt.Errorf("writer %d: %w", wi, err)
					return
				}
			}
		}(wi)
	}
	for ri := 0; ri < readers; ri++ {
		wg.Add(1)
		go func(ri int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				res, err := e.Query("MATCH (n:C) RETURN count(*)", nil)
				if err != nil {
					errs <- fmt.Errorf("reader %d: %w", ri, err)
					return
				}
				if n := res.Rows[0][0].S.Int(); n < 0 || n > writers*perWriter {
					errs <- fmt.Errorf("reader %d: impossible count %d", ri, n)
					return
				}
			}
		}(ri)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	res := mustQuery(t, e, "MATCH (n:C) RETURN count(*)", nil)
	if n := res.Rows[0][0].S.Int(); n != writers*perWriter {
		t.Errorf("final count = %d, want %d", n, writers*perWriter)
	}
}

// TestWriteCancelledBeforeLock checks that a write whose context is already
// cancelled when it reaches the single-writer lock does not execute.
func TestWriteCancelledBeforeLock(t *testing.T) {
	e := newEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.QueryContext(ctx, "CREATE (n:X)", nil); err == nil {
		t.Fatal("cancelled write succeeded")
	}
	res := mustQuery(t, e, "MATCH (n:X) RETURN count(*)", nil)
	if n := res.Rows[0][0].S.Int(); n != 0 {
		t.Errorf("cancelled write left %d nodes", n)
	}
}

// TestReadCancelledMidScan checks cooperative cancellation inside the
// executor: a cartesian product big enough to run for seconds must stop
// shortly after its deadline.
func TestReadCancelledMidScan(t *testing.T) {
	e := newEngine(t)
	for i := 0; i < 100; i++ {
		mustQuery(t, e, fmt.Sprintf("CREATE (n:N {i: %d})", i), nil)
	}
	const timeout = 100 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	begin := time.Now()
	_, err := e.QueryContext(ctx, "MATCH (a), (b), (c) RETURN count(*)", nil)
	elapsed := time.Since(begin)
	if err == nil {
		t.Fatal("huge scan completed under a 100ms deadline")
	}
	if elapsed > 10*timeout {
		t.Errorf("cancellation took %v, want about %v", elapsed, timeout)
	}
}
