package cypher

import "aion/internal/model"

// TemporalKind is the FOR SYSTEM_TIME interval specifier form (Sec 3).
type TemporalKind int

const (
	// TemporalNone means no USE clause: the latest graph version.
	TemporalNone TemporalKind = iota
	// TemporalAsOf is AS OF t: the valid graph at t.
	TemporalAsOf
	// TemporalFromTo is FROM ti TO tj: the temporal graph over (ti, tj).
	TemporalFromTo
	// TemporalBetween is BETWEEN ti AND tj: over [ti, tj).
	TemporalBetween
	// TemporalContainedIn is CONTAINED IN (ti, tj): over [ti, tj].
	TemporalContainedIn
)

// TemporalClause is the parsed USE ... FOR SYSTEM_TIME clause.
type TemporalClause struct {
	Kind TemporalKind
	A, B Expr
}

// Window resolves the clause to a half-open system-time interval
// [Start, End) using the model's conventions.
func (tc TemporalClause) Window(eval func(Expr) (model.Value, error)) (model.Interval, error) {
	get := func(e Expr) (model.Timestamp, error) {
		v, err := eval(e)
		if err != nil {
			return 0, err
		}
		return model.Timestamp(v.Int()), nil
	}
	switch tc.Kind {
	case TemporalAsOf:
		t, err := get(tc.A)
		if err != nil {
			return model.Interval{}, err
		}
		return model.Interval{Start: t, End: t}, nil
	case TemporalFromTo: // open interval (ti, tj)
		a, err := get(tc.A)
		if err != nil {
			return model.Interval{}, err
		}
		b, err := get(tc.B)
		if err != nil {
			return model.Interval{}, err
		}
		return model.Interval{Start: a + 1, End: b}, nil
	case TemporalBetween: // [ti, tj)
		a, err := get(tc.A)
		if err != nil {
			return model.Interval{}, err
		}
		b, err := get(tc.B)
		if err != nil {
			return model.Interval{}, err
		}
		return model.Interval{Start: a, End: b}, nil
	case TemporalContainedIn: // [ti, tj]
		a, err := get(tc.A)
		if err != nil {
			return model.Interval{}, err
		}
		b, err := get(tc.B)
		if err != nil {
			return model.Interval{}, err
		}
		return model.Interval{Start: a, End: b + 1}, nil
	}
	return model.Interval{Start: -1, End: -1}, nil // latest
}

// --- expressions ------------------------------------------------------------

// Expr is an expression AST node.
type Expr interface{ exprNode() }

// Lit is a literal value.
type Lit struct{ V model.Value }

// Param is a $parameter reference.
type Param struct{ Name string }

// VarRef references a bound pattern variable.
type VarRef struct{ Name string }

// PropAccess is n.prop.
type PropAccess struct {
	Var  string
	Prop string
}

// IDCall is id(n).
type IDCall struct{ Var string }

// CountCall is COUNT(*) or COUNT(expr).
type CountCall struct{ Arg Expr } // nil arg = COUNT(*)

// BinOp is a binary operation: comparison, AND, OR, +.
type BinOp struct {
	Op   string // "=", "<>", "<", "<=", ">", ">=", "AND", "OR", "+"
	L, R Expr
}

// NotOp negates a boolean expression.
type NotOp struct{ E Expr }

// AppTimeFilter is APPLICATION_TIME CONTAINED IN (a, b) inside WHERE.
type AppTimeFilter struct{ A, B Expr }

func (Lit) exprNode()           {}
func (Param) exprNode()         {}
func (VarRef) exprNode()        {}
func (PropAccess) exprNode()    {}
func (IDCall) exprNode()        {}
func (CountCall) exprNode()     {}
func (BinOp) exprNode()         {}
func (NotOp) exprNode()         {}
func (AppTimeFilter) exprNode() {}

// --- patterns ---------------------------------------------------------------

// NodePattern is (var:Label {props}).
type NodePattern struct {
	Var    string
	Labels []string
	Props  map[string]Expr
}

// RelPattern is -[var:TYPE*min..max]-> (or <-, or undirected).
type RelPattern struct {
	Var     string
	Type    string
	Dir     model.Direction // Outgoing for ->, Incoming for <-, Both for -
	VarHops bool
	MinHops int
	MaxHops int
	Props   map[string]Expr
}

// PathPattern is an alternating node/rel chain.
type PathPattern struct {
	Nodes []NodePattern
	Rels  []RelPattern
}

// --- statements -------------------------------------------------------------

// Statement is a parsed query.
type Statement struct {
	Temporal TemporalClause
	Match    *MatchStmt
	Create   *CreateStmt
	Call     *CallStmt
}

// ReturnItem is one projection with an optional alias.
type ReturnItem struct {
	E     Expr
	Alias string
}

// OrderBy is an ORDER BY key.
type OrderBy struct {
	E    Expr
	Desc bool
}

// MatchStmt is MATCH p1, p2, ... [WHERE ...] followed by RETURN, SET,
// DELETE, and/or CREATE clauses.
type MatchStmt struct {
	Patterns []PathPattern
	Where    Expr // nil when absent
	Return   []ReturnItem
	Order    []OrderBy
	Limit    int // 0 = unlimited
	// Write clauses attached to the MATCH:
	Sets    []SetItem
	Deletes []string // variables to delete
	Detach  bool
	Creates []PathPattern // MATCH ... CREATE patterns reusing bound vars
}

// SetItem is SET var.prop = expr.
type SetItem struct {
	Var  string
	Prop string
	E    Expr
}

// CreateStmt is CREATE pattern, pattern, ...
type CreateStmt struct {
	Patterns []PathPattern
	Return   []ReturnItem
}

// CallStmt is CALL proc(args) [YIELD cols].
type CallStmt struct {
	Name  string
	Args  []Expr
	Yield []string
}
