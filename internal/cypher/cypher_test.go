package cypher

import (
	"strings"
	"testing"

	"aion/internal/model"
	"aion/internal/system"
)

func newEngine(t *testing.T) *Engine {
	t.Helper()
	sys, err := system.Open(system.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	return NewEngine(sys)
}

func mustQuery(t *testing.T, e *Engine, q string, params map[string]model.Value) *Result {
	t.Helper()
	res, err := e.Query(q, params)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	return res
}

// seed builds a small social network and returns the engine. Timeline:
// commits 1..4 create alice+bob (1), carol (2), rels (3), alice update (4),
// rel deletion (5).
func seed(t *testing.T) *Engine {
	e := newEngine(t)
	mustQuery(t, e, `CREATE (a:Person {name: 'alice', age: 30})-[:KNOWS {since: 2020}]->(b:Person {name: 'bob'})`, nil)
	mustQuery(t, e, `CREATE (c:Person {name: 'carol'})`, nil)
	mustQuery(t, e, `MATCH (b:Person {name: 'bob'}) CREATE (b)-[:KNOWS]->(c2:City {name: 'berlin'})`, nil)
	mustQuery(t, e, `MATCH (a:Person {name: 'alice'}) SET a.age = 31`, nil)
	if err := e.Sys.Aion.WaitSync(); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"FOO",
		"MATCH (n) WHERE",
		"MATCH (n)",
		"USE GDB FOR SYSTEM_TIME MATCH (n) RETURN n",
		"MATCH (n RETURN n",
		"CALL missing.paren",
		"MATCH (n) RETURN n LIMIT x",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("expected parse error for %q", q)
		}
	}
}

func TestParseTemporalForms(t *testing.T) {
	cases := map[string]TemporalKind{
		"USE GDB MATCH (n) RETURN n":                                            TemporalNone,
		"USE GDB FOR SYSTEM_TIME AS OF 5 MATCH (n) RETURN n":                    TemporalAsOf,
		"USE GDB FOR SYSTEM_TIME FROM 1 TO 9 MATCH (n) RETURN n":                TemporalFromTo,
		"USE GDB FOR SYSTEM_TIME BETWEEN 1 AND 9 MATCH (n) RETURN n":            TemporalBetween,
		"USE GDB FOR SYSTEM_TIME CONTAINED IN (1, 9) MATCH (n) RETURN n":        TemporalContainedIn,
		"use gdb for system_time as of $t match (n) where id(n) = $id return n": TemporalAsOf,
	}
	for q, kind := range cases {
		st, err := Parse(q)
		if err != nil {
			t.Errorf("parse %q: %v", q, err)
			continue
		}
		if st.Temporal.Kind != kind {
			t.Errorf("%q: kind = %v, want %v", q, st.Temporal.Kind, kind)
		}
	}
}

func TestCreateAndMatchLatest(t *testing.T) {
	e := seed(t)
	res := mustQuery(t, e, `MATCH (n:Person) RETURN n.name ORDER BY n.name`, nil)
	if len(res.Rows) != 3 {
		t.Fatalf("persons = %d", len(res.Rows))
	}
	if res.Rows[0][0].S.Str() != "alice" || res.Rows[2][0].S.Str() != "carol" {
		t.Errorf("order: %v", res.Rows)
	}
	// Relationship pattern.
	res = mustQuery(t, e, `MATCH (a:Person)-[r:KNOWS]->(b) RETURN a.name, b.name`, nil)
	if len(res.Rows) != 2 {
		t.Fatalf("knows edges = %d", len(res.Rows))
	}
	// Label filter on the target.
	res = mustQuery(t, e, `MATCH (a)-[:KNOWS]->(b:City) RETURN a.name`, nil)
	if len(res.Rows) != 1 || res.Rows[0][0].S.Str() != "bob" {
		t.Errorf("city edge: %v", res.Rows)
	}
}

func TestWhereAndParams(t *testing.T) {
	e := seed(t)
	res := mustQuery(t, e, `MATCH (n:Person) WHERE n.age >= 31 RETURN n.name`, nil)
	if len(res.Rows) != 1 || res.Rows[0][0].S.Str() != "alice" {
		t.Errorf("age filter: %v", res.Rows)
	}
	res = mustQuery(t, e, `MATCH (n) WHERE n.name = $who RETURN id(n)`,
		map[string]model.Value{"who": model.StringValue("carol")})
	if len(res.Rows) != 1 {
		t.Fatalf("param filter: %v", res.Rows)
	}
	res = mustQuery(t, e, `MATCH (n:Person) WHERE NOT n.name = 'alice' AND n.age <> 31 RETURN count(*)`, nil)
	if res.Rows[0][0].S.Int() != 2 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
}

func TestCountAndLimit(t *testing.T) {
	e := seed(t)
	res := mustQuery(t, e, `MATCH (n) RETURN count(*) AS c`, nil)
	if res.Columns[0] != "c" || res.Rows[0][0].S.Int() != 4 {
		t.Errorf("count: %v %v", res.Columns, res.Rows)
	}
	res = mustQuery(t, e, `MATCH (n) RETURN id(n) ORDER BY id(n) LIMIT 2`, nil)
	if len(res.Rows) != 2 || res.Rows[0][0].S.Int() != 0 {
		t.Errorf("limit: %v", res.Rows)
	}
}

func TestTemporalAsOfHistoryLookup(t *testing.T) {
	e := seed(t)
	// Find alice's id.
	res := mustQuery(t, e, `MATCH (n {name: 'alice'}) RETURN id(n)`, nil)
	id := res.Rows[0][0].S

	// At commit 1 alice has age 30; at commit 4 age 31.
	res = mustQuery(t, e, `USE GDB FOR SYSTEM_TIME AS OF 1 MATCH (n) WHERE id(n) = $id RETURN n.age`,
		map[string]model.Value{"id": id})
	if len(res.Rows) != 1 || res.Rows[0][0].S.Int() != 30 {
		t.Errorf("as-of 1: %v", res.Rows)
	}
	res = mustQuery(t, e, `USE GDB FOR SYSTEM_TIME AS OF 4 MATCH (n) WHERE id(n) = $id RETURN n.age`,
		map[string]model.Value{"id": id})
	if len(res.Rows) != 1 || res.Rows[0][0].S.Int() != 31 {
		t.Errorf("as-of 4: %v", res.Rows)
	}
}

func TestTemporalBetweenReturnsVersions(t *testing.T) {
	e := seed(t)
	res := mustQuery(t, e, `MATCH (n {name: 'alice'}) RETURN id(n)`, nil)
	id := res.Rows[0][0].S
	// Fig 1a: history lookup between t1 and t2 (exclusive).
	res = mustQuery(t, e, `USE GDB FOR SYSTEM_TIME BETWEEN 1 AND 100 MATCH (n:Person) WHERE id(n) = $id RETURN n.age`,
		map[string]model.Value{"id": id})
	if len(res.Rows) != 2 {
		t.Fatalf("versions = %d, want 2", len(res.Rows))
	}
	ages := map[int64]bool{res.Rows[0][0].S.Int(): true, res.Rows[1][0].S.Int(): true}
	if !ages[30] || !ages[31] {
		t.Errorf("version ages: %v", ages)
	}
}

func TestTemporalSnapshotScan(t *testing.T) {
	e := seed(t)
	// At commit 1 only alice and bob exist.
	res := mustQuery(t, e, `USE GDB FOR SYSTEM_TIME AS OF 1 MATCH (n) RETURN count(*)`, nil)
	if res.Rows[0][0].S.Int() != 2 {
		t.Errorf("as-of 1 count = %v", res.Rows[0][0])
	}
	res = mustQuery(t, e, `USE GDB FOR SYSTEM_TIME AS OF 3 MATCH (n) RETURN count(*)`, nil)
	if res.Rows[0][0].S.Int() != 4 {
		t.Errorf("as-of 3 count = %v", res.Rows[0][0])
	}
}

func TestVariableHopExpansion(t *testing.T) {
	e := seed(t)
	res := mustQuery(t, e, `MATCH (a {name: 'alice'}) RETURN id(a)`, nil)
	id := res.Rows[0][0].S
	// Fig 1b: neighbourhood lookup at t1 (alice -> bob -> berlin at ts 3).
	res = mustQuery(t, e, `USE GDB FOR SYSTEM_TIME AS OF 3 MATCH (n)-[*2]->(m) WHERE id(n) = $id RETURN m`,
		map[string]model.Value{"id": id})
	if len(res.Rows) != 1 || res.Rows[0][0].Node == nil {
		t.Fatalf("2-hop: %v", res.Rows)
	}
	if res.Rows[0][0].Node.Props["name"].Str() != "berlin" {
		t.Errorf("2-hop target: %v", res.Rows[0][0])
	}
	// Range 1..2 returns bob and berlin.
	res = mustQuery(t, e, `USE GDB FOR SYSTEM_TIME AS OF 3 MATCH (n)-[*1..2]->(m) WHERE id(n) = $id RETURN m`,
		map[string]model.Value{"id": id})
	if len(res.Rows) != 2 {
		t.Errorf("1..2-hop rows = %d", len(res.Rows))
	}
}

func TestSetAndDelete(t *testing.T) {
	e := seed(t)
	res := mustQuery(t, e, `MATCH (n {name: 'carol'}) SET n.age = 25`, nil)
	if res.PropsSet != 1 {
		t.Errorf("props set = %d", res.PropsSet)
	}
	res = mustQuery(t, e, `MATCH (n {name: 'carol'}) RETURN n.age`, nil)
	if res.Rows[0][0].S.Int() != 25 {
		t.Error("SET not visible")
	}
	// Delete a relationship then the node.
	res = mustQuery(t, e, `MATCH (a {name: 'alice'})-[r:KNOWS]->(b) DELETE r`, nil)
	if res.RelsDeleted != 1 {
		t.Errorf("rels deleted = %d", res.RelsDeleted)
	}
	res = mustQuery(t, e, `MATCH (n {name: 'alice'}) DELETE n`, nil)
	if res.NodesDeleted != 1 {
		t.Errorf("nodes deleted = %d", res.NodesDeleted)
	}
	res = mustQuery(t, e, `MATCH (n:Person) RETURN count(*)`, nil)
	if res.Rows[0][0].S.Int() != 2 {
		t.Errorf("persons after delete = %v", res.Rows[0][0])
	}
	// But history still knows alice (time travel).
	e.Sys.Aion.WaitSync()
	res = mustQuery(t, e, `USE GDB FOR SYSTEM_TIME AS OF 4 MATCH (n:Person) RETURN count(*)`, nil)
	if res.Rows[0][0].S.Int() != 3 {
		t.Errorf("historical persons = %v", res.Rows[0][0])
	}
}

func TestDetachDelete(t *testing.T) {
	e := seed(t)
	res := mustQuery(t, e, `MATCH (n {name: 'bob'}) DETACH DELETE n`, nil)
	if res.NodesDeleted != 1 || res.RelsDeleted != 2 {
		t.Errorf("detach delete: %d nodes %d rels", res.NodesDeleted, res.RelsDeleted)
	}
}

func TestWriteOnHistoricalVersionRejected(t *testing.T) {
	e := seed(t)
	_, err := e.Query(`USE GDB FOR SYSTEM_TIME AS OF 1 MATCH (n) SET n.x = 1`, nil)
	if err == nil || !strings.Contains(err.Error(), "historical") {
		t.Errorf("historical write must be rejected, got %v", err)
	}
}

func TestApplicationTimeFilter(t *testing.T) {
	e := newEngine(t)
	// Fig 1c: bitemporal lookup. Store app times as properties.
	mustQuery(t, e, `CREATE (n:Event {name: 'a', __app_start: 5, __app_end: 10})`, nil)
	mustQuery(t, e, `CREATE (n:Event {name: 'b', __app_start: 50, __app_end: 60})`, nil)
	e.Sys.Aion.WaitSync()
	res := mustQuery(t, e,
		`USE GDB FOR SYSTEM_TIME AS OF 2 MATCH (n:Event) WHERE APPLICATION_TIME CONTAINED IN (1, 20) RETURN n.name`, nil)
	if len(res.Rows) != 1 || res.Rows[0][0].S.Str() != "a" {
		t.Errorf("bitemporal filter: %v", res.Rows)
	}
}

func TestProcedures(t *testing.T) {
	e := seed(t)
	res := mustQuery(t, e, `CALL aion.diff(1, 100)`, nil)
	if len(res.Rows) < 5 {
		t.Errorf("diff rows = %d", len(res.Rows))
	}
	res = mustQuery(t, e, `CALL aion.graph(3)`, nil)
	if res.Rows[0][0].S.Int() != 4 {
		t.Errorf("graph nodes = %v", res.Rows[0][0])
	}
	res = mustQuery(t, e, `CALL aion.node(0, 0, 100)`, nil)
	if len(res.Rows) != 2 { // alice has two versions
		t.Errorf("node versions = %d", len(res.Rows))
	}
	res = mustQuery(t, e, `CALL aion.expand(0, 'out', 2, 3) YIELD hop`, nil)
	if len(res.Columns) != 1 || res.Columns[0] != "hop" {
		t.Errorf("yield: %v", res.Columns)
	}
	if len(res.Rows) != 2 {
		t.Errorf("expand rows = %d", len(res.Rows))
	}
	if _, err := e.Query(`CALL nope.nope()`, nil); err == nil {
		t.Error("unknown procedure must fail")
	}
	if _, err := e.Query(`CALL aion.expand(0, 'out', 2, 3) YIELD nothere`, nil); err == nil {
		t.Error("unknown yield column must fail")
	}
}

func TestIncrementalProcedures(t *testing.T) {
	e := newEngine(t)
	mustQuery(t, e, `CREATE (a:N)-[:R {w: 10}]->(b:N)`, nil)
	mustQuery(t, e, `MATCH (a:N), (b:N) RETURN count(*)`, nil) // no-op warm
	mustQuery(t, e, `CREATE (c:N)-[:R {w: 20}]->(d:N)`, nil)
	mustQuery(t, e, `CREATE (x:N)-[:R {w: 30}]->(y:N)`, nil)
	e.Sys.Aion.WaitSync()
	res := mustQuery(t, e, `CALL aion.incremental.avg('w', 1, 3, 1)`, nil)
	if len(res.Rows) != 3 {
		t.Fatalf("avg series rows = %d", len(res.Rows))
	}
	last := res.Rows[len(res.Rows)-1]
	if last[1].S.Float() != 20 {
		t.Errorf("final avg = %v", last[1])
	}
	res = mustQuery(t, e, `CALL aion.incremental.bfs(0, 1, 3, 1)`, nil)
	if len(res.Rows) != 3 {
		t.Errorf("bfs series rows = %d", len(res.Rows))
	}
	res = mustQuery(t, e, `CALL aion.incremental.pagerank(1, 3, 1)`, nil)
	if len(res.Rows) != 3 {
		t.Errorf("pagerank series rows = %d", len(res.Rows))
	}
}

func TestMultiPatternComma(t *testing.T) {
	e := newEngine(t)
	res := mustQuery(t, e, `CREATE (a:X {k: 1}), (b:Y {k: 2})`, nil)
	if res.NodesCreated != 2 {
		t.Errorf("created = %d", res.NodesCreated)
	}
}

func TestCreateReturn(t *testing.T) {
	e := newEngine(t)
	res := mustQuery(t, e, `CREATE (a:Z {k: 7}) RETURN id(a), a.k`, nil)
	if len(res.Rows) != 1 || res.Rows[0][1].S.Int() != 7 {
		t.Errorf("create return: %v", res.Rows)
	}
}

func TestIncomingDirectionPattern(t *testing.T) {
	e := seed(t)
	res := mustQuery(t, e, `MATCH (b {name: 'bob'})<-[r:KNOWS]-(a) RETURN a.name`, nil)
	if len(res.Rows) != 1 || res.Rows[0][0].S.Str() != "alice" {
		t.Errorf("incoming: %v", res.Rows)
	}
}

func TestThreeNodeChain(t *testing.T) {
	e := seed(t)
	res := mustQuery(t, e, `MATCH (a)-[:KNOWS]->(b)-[:KNOWS]->(c) RETURN a.name, c.name`, nil)
	if len(res.Rows) != 1 || res.Rows[0][0].S.Str() != "alice" || res.Rows[0][1].S.Str() != "berlin" {
		t.Errorf("chain: %v", res.Rows)
	}
}
