package cypher

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"aion/internal/memgraph"
	"aion/internal/model"
	"aion/internal/system"
)

// Val is one result cell: a scalar, a node, or a relationship.
type Val struct {
	Node *model.Node
	Rel  *model.Rel
	S    model.Value
}

// ScalarVal wraps a scalar.
func ScalarVal(v model.Value) Val { return Val{S: v} }

// NodeVal wraps a node.
func NodeVal(n *model.Node) Val { return Val{Node: n} }

// RelVal wraps a relationship.
func RelVal(r *model.Rel) Val { return Val{Rel: r} }

// String renders the cell for display.
func (v Val) String() string {
	switch {
	case v.Node != nil:
		return fmt.Sprintf("(n%d%v %v)", v.Node.ID, v.Node.Labels, v.Node.Props)
	case v.Rel != nil:
		return fmt.Sprintf("[r%d %d->%d:%s]", v.Rel.ID, v.Rel.Src, v.Rel.Tgt, v.Rel.Label)
	default:
		return v.S.String()
	}
}

// Result is a query result table.
type Result struct {
	Columns []string
	Rows    [][]Val
	// Write summary counters.
	NodesCreated, RelsCreated, PropsSet, NodesDeleted, RelsDeleted int
	// CommitTS is the commit timestamp of a write statement.
	CommitTS model.Timestamp
}

// Engine executes temporal Cypher against a host + Aion system.
//
// Concurrency contract: any number of read statements may execute
// concurrently with each other (reads take no engine lock — the host graph
// and the temporal stores synchronize internally). Write statements divide
// in two classes. Blind CREATE statements only ever add entities under
// fresh ids, so they cannot conflict with one another: they stage and
// commit concurrently, sharing a group-commit round (one fsync for all of
// them) in the host's pipeline. Read-modify-write statements (MATCH with
// SET/DELETE/CREATE clauses) are still mutually exclusive — with each other
// AND with in-flight CREATEs — so their matched bindings cannot be
// invalidated by a concurrent writer between match and commit. Reads never
// block behind anything.
type Engine struct {
	Sys   *system.System
	procs map[string]Proc

	// writeMu is the write-statement lock: blind CREATEs take the read
	// side (concurrent with each other), MATCH-writes the write side
	// (exclusive). Reads take neither.
	writeMu sync.RWMutex
}

// NewEngine creates an engine with the built-in temporal procedures
// registered.
func NewEngine(sys *system.System) *Engine {
	e := &Engine{Sys: sys, procs: map[string]Proc{}}
	registerBuiltins(e)
	return e
}

// Register adds a procedure.
func (e *Engine) Register(name string, p Proc) { e.procs[name] = p }

// Query parses and executes one statement. It is shorthand for
// QueryContext(context.Background(), ...).
func (e *Engine) Query(q string, params map[string]model.Value) (*Result, error) {
	return e.QueryContext(context.Background(), q, params)
}

// QueryContext parses and executes one statement under ctx: pattern-match
// loops, temporal store scans, and procedures all observe cancellation
// cooperatively and return ctx.Err() shortly after the context fires.
func (e *Engine) QueryContext(c context.Context, q string, params map[string]model.Value) (*Result, error) {
	st, err := Parse(q)
	if err != nil {
		return nil, err
	}
	return e.ExecContext(c, st, params)
}

// Exec executes a parsed statement (shorthand for ExecContext with a
// background context).
func (e *Engine) Exec(st *Statement, params map[string]model.Value) (*Result, error) {
	return e.ExecContext(context.Background(), st, params)
}

// IsWrite reports whether st mutates the graph (and must therefore hold a
// side of the write lock). Exported so serving layers can route or reject
// writes (replicas are read-only) before execution.
func IsWrite(st *Statement) bool {
	if st.Create != nil {
		return true
	}
	if m := st.Match; m != nil {
		return len(m.Sets) > 0 || len(m.Deletes) > 0 || len(m.Creates) > 0
	}
	return false
}

// isWrite is the internal alias for IsWrite.
func isWrite(st *Statement) bool { return IsWrite(st) }

// isBlindCreate reports whether st only creates new entities (a bare CREATE
// with no MATCH part): such statements allocate fresh ids and reference no
// pre-existing state, so they can run concurrently and coalesce in the
// host's group-commit pipeline.
func isBlindCreate(st *Statement) bool {
	return st.Create != nil && st.Match == nil
}

// ExecContext executes a parsed statement under ctx. Blind CREATEs share
// the write lock (staging concurrently, conflict-free by construction);
// MATCH-writes hold it exclusively; reads run lock-free.
func (e *Engine) ExecContext(c context.Context, st *Statement, params map[string]model.Value) (*Result, error) {
	if c == nil {
		c = context.Background()
	}
	if isWrite(st) {
		if isBlindCreate(st) {
			e.writeMu.RLock()
			defer e.writeMu.RUnlock()
		} else {
			e.writeMu.Lock()
			defer e.writeMu.Unlock()
		}
		// A write that spent its deadline queueing behind other writers
		// should not start applying updates.
		if err := c.Err(); err != nil {
			return nil, err
		}
	}
	ctx := &execCtx{e: e, c: c, params: params}
	switch {
	case st.Call != nil:
		return e.execCall(ctx, st)
	case st.Create != nil:
		return e.execCreate(ctx, st.Create)
	case st.Match != nil:
		return e.execMatch(ctx, st)
	}
	return nil, fmt.Errorf("cypher: empty statement")
}

type execCtx struct {
	e      *Engine
	c      context.Context
	params map[string]model.Value
	steps  int
}

// checkCancel is the engine's cooperative cancellation point, called from
// the pattern-matching and projection loops. The real ctx.Err() load is
// strided (every 256 steps) so the check stays invisible in match profiles.
func (ctx *execCtx) checkCancel() error {
	ctx.steps++
	if ctx.steps&255 == 0 {
		return ctx.c.Err()
	}
	return nil
}

// bindings maps pattern variables to matched entities.
type bindings map[string]Val

func (b bindings) clone() bindings {
	c := make(bindings, len(b)+1)
	for k, v := range b {
		c[k] = v
	}
	return c
}

// evalScalar evaluates an expression to a scalar in a binding environment.
func (ctx *execCtx) evalScalar(env bindings, ex Expr) (model.Value, error) {
	switch x := ex.(type) {
	case Lit:
		return x.V, nil
	case Param:
		v, ok := ctx.params[x.Name]
		if !ok {
			return model.Value{}, fmt.Errorf("cypher: missing parameter $%s", x.Name)
		}
		return v, nil
	case VarRef:
		v, ok := env[x.Name]
		if !ok {
			return model.Value{}, fmt.Errorf("cypher: unbound variable %s", x.Name)
		}
		if v.Node != nil {
			return model.IntValue(int64(v.Node.ID)), nil
		}
		if v.Rel != nil {
			return model.IntValue(int64(v.Rel.ID)), nil
		}
		return v.S, nil
	case PropAccess:
		v, ok := env[x.Var]
		if !ok {
			return model.Value{}, fmt.Errorf("cypher: unbound variable %s", x.Var)
		}
		switch {
		case v.Node != nil:
			return v.Node.Props[x.Prop], nil
		case v.Rel != nil:
			return v.Rel.Props[x.Prop], nil
		}
		return model.Value{}, fmt.Errorf("cypher: %s is not an entity", x.Var)
	case IDCall:
		v, ok := env[x.Var]
		if !ok {
			return model.Value{}, fmt.Errorf("cypher: unbound variable %s", x.Var)
		}
		switch {
		case v.Node != nil:
			return model.IntValue(int64(v.Node.ID)), nil
		case v.Rel != nil:
			return model.IntValue(int64(v.Rel.ID)), nil
		}
		return model.Value{}, fmt.Errorf("cypher: id() of non-entity %s", x.Var)
	case BinOp:
		return ctx.evalBinOp(env, x)
	case NotOp:
		v, err := ctx.evalScalar(env, x.E)
		if err != nil {
			return model.Value{}, err
		}
		return model.BoolValue(!truthy(v)), nil
	case AppTimeFilter:
		return ctx.evalAppTime(env, x)
	case CountCall:
		return model.Value{}, fmt.Errorf("cypher: COUNT is only allowed in RETURN")
	}
	return model.Value{}, fmt.Errorf("cypher: unsupported expression %T", ex)
}

func truthy(v model.Value) bool {
	switch v.Kind() {
	case model.KindBool:
		return v.Bool()
	case model.KindNull:
		return false
	case model.KindInt:
		return v.Int() != 0
	}
	return true
}

func (ctx *execCtx) evalBinOp(env bindings, x BinOp) (model.Value, error) {
	l, err := ctx.evalScalar(env, x.L)
	if err != nil {
		return model.Value{}, err
	}
	if x.Op == "AND" && !truthy(l) {
		return model.BoolValue(false), nil
	}
	if x.Op == "OR" && truthy(l) {
		return model.BoolValue(true), nil
	}
	r, err := ctx.evalScalar(env, x.R)
	if err != nil {
		return model.Value{}, err
	}
	switch x.Op {
	case "AND":
		return model.BoolValue(truthy(r)), nil
	case "OR":
		return model.BoolValue(truthy(r)), nil
	case "=":
		return model.BoolValue(l.Compare(r) == 0), nil
	case "<>":
		return model.BoolValue(l.Compare(r) != 0), nil
	case "<":
		return model.BoolValue(l.Compare(r) < 0), nil
	case "<=":
		return model.BoolValue(l.Compare(r) <= 0), nil
	case ">":
		return model.BoolValue(l.Compare(r) > 0), nil
	case ">=":
		return model.BoolValue(l.Compare(r) >= 0), nil
	case "+":
		if l.Kind() == model.KindString || r.Kind() == model.KindString {
			return model.StringValue(l.Str() + r.Str()), nil
		}
		if l.Kind() == model.KindFloat || r.Kind() == model.KindFloat {
			return model.FloatValue(l.Float() + r.Float()), nil
		}
		return model.IntValue(l.Int() + r.Int()), nil
	}
	return model.Value{}, fmt.Errorf("cypher: unknown operator %s", x.Op)
}

// evalAppTime implements the bitemporal WHERE filter (Sec 4.5): true iff
// every bound entity's application-time interval is contained in [a, b];
// entities without application time fall back to system time (pass).
func (ctx *execCtx) evalAppTime(env bindings, x AppTimeFilter) (model.Value, error) {
	av, err := ctx.evalScalar(env, x.A)
	if err != nil {
		return model.Value{}, err
	}
	bv, err := ctx.evalScalar(env, x.B)
	if err != nil {
		return model.Value{}, err
	}
	win := model.Interval{Start: model.Timestamp(av.Int()), End: model.Timestamp(bv.Int()) + 1}
	for _, v := range env {
		var iv model.Interval
		switch {
		case v.Node != nil:
			iv = v.Node.AppInterval()
		case v.Rel != nil:
			iv = v.Rel.AppInterval()
		default:
			continue
		}
		if iv.Start == 0 && iv.End == model.TSInfinity {
			continue // unset: system time already filtered
		}
		if !(iv.Start >= win.Start && iv.End <= win.End) {
			return model.BoolValue(false), nil
		}
	}
	return model.BoolValue(true), nil
}

// --- MATCH ------------------------------------------------------------------

func (e *Engine) execMatch(ctx *execCtx, st *Statement) (*Result, error) {
	m := st.Match
	if len(m.Sets) > 0 || len(m.Deletes) > 0 || len(m.Creates) > 0 {
		if st.Temporal.Kind != TemporalNone {
			return nil, fmt.Errorf("cypher: write clauses cannot target historical versions")
		}
		return e.execMatchWrite(ctx, m)
	}
	window, err := st.Temporal.Window(func(ex Expr) (model.Value, error) {
		return ctx.evalScalar(bindings{}, ex)
	})
	if err != nil {
		return nil, err
	}

	var rows []bindings
	switch {
	case st.Temporal.Kind == TemporalNone:
		// Latest graph: a normal read transaction, unaffected by Aion.
		// View avoids cloning; entity pointers stay valid after it
		// returns because mutations replace entity objects.
		e.Sys.Host.View(func(g *memgraph.Graph) {
			rows, err = e.matchOnGraph(ctx, g, m)
		})
	case window.Start == window.End:
		// AS OF: point-in-time. Anchored single-entity lookups go through
		// the LineageStore; everything else materializes the snapshot.
		rows, err = e.matchAsOf(ctx, m, window.Start)
	default:
		// Range: history semantics for anchored single-node lookups, and
		// window-graph matching otherwise.
		rows, err = e.matchRange(ctx, m, window)
	}
	if err != nil {
		return nil, err
	}
	return e.project(ctx, m, rows)
}

// anchorID extracts an `id(var) = <const>` (or `id(var) = $param`)
// equality from the WHERE conjunction for the given variable.
func (ctx *execCtx) anchorID(where Expr, varName string) (int64, bool) {
	var walk func(ex Expr) (int64, bool)
	walk = func(ex Expr) (int64, bool) {
		b, ok := ex.(BinOp)
		if !ok {
			return 0, false
		}
		if b.Op == "AND" {
			if id, ok := walk(b.L); ok {
				return id, true
			}
			return walk(b.R)
		}
		if b.Op != "=" {
			return 0, false
		}
		idc, lok := b.L.(IDCall)
		if lok && idc.Var == varName {
			if v, err := ctx.evalScalar(bindings{}, b.R); err == nil && v.Kind() == model.KindInt {
				return v.Int(), true
			}
		}
		idc, rok := b.R.(IDCall)
		if rok && idc.Var == varName {
			if v, err := ctx.evalScalar(bindings{}, b.L); err == nil && v.Kind() == model.KindInt {
				return v.Int(), true
			}
		}
		return 0, false
	}
	if where == nil {
		return 0, false
	}
	return walk(where)
}

// matchAsOf plans a point-in-time match (Sec 5.1): anchored single-node or
// anchored expansion patterns use the temporal API directly; otherwise the
// full snapshot is constructed.
func (e *Engine) matchAsOf(ctx *execCtx, m *MatchStmt, ts model.Timestamp) ([]bindings, error) {
	ad := e.Sys.Aion
	if ad == nil {
		return nil, fmt.Errorf("cypher: temporal clause requires Aion")
	}
	// Anchored single node: LineageStore point query.
	if len(m.Patterns) == 1 && len(m.Patterns[0].Nodes) == 1 {
		np := m.Patterns[0].Nodes[0]
		if id, ok := ctx.anchorID(m.Where, np.Var); ok {
			ns, err := ad.GetNodeContext(ctx.c, model.NodeID(id), ts, ts)
			if err != nil {
				return nil, err
			}
			var rows []bindings
			for _, n := range ns {
				if nodeMatches(ctx, n, np) {
					env := bindings{np.Var: NodeVal(n)}
					if keep, err := ctx.applyWhere(env, m.Where); err != nil {
						return nil, err
					} else if keep {
						rows = append(rows, env)
					}
				}
			}
			return rows, nil
		}
	}
	// Anchored variable-hop expansion: the Expand API (Alg 1, planner
	// chooses the store).
	if len(m.Patterns) == 1 && len(m.Patterns[0].Nodes) == 2 &&
		len(m.Patterns[0].Rels) == 1 && m.Patterns[0].Rels[0].VarHops {
		np := m.Patterns[0].Nodes[0]
		rp := m.Patterns[0].Rels[0]
		if id, ok := ctx.anchorID(m.Where, np.Var); ok && rp.Type == "" {
			start, err := ad.GetNodeContext(ctx.c, model.NodeID(id), ts, ts)
			if err != nil || len(start) == 0 {
				return nil, err
			}
			res, err := ad.ExpandContext(ctx.c, model.NodeID(id), rp.Dir, rp.MaxHops, ts)
			if err != nil {
				return nil, err
			}
			var rows []bindings
			mp := m.Patterns[0].Nodes[1]
			for hop := rp.MinHops - 1; hop < len(res); hop++ {
				for _, n := range res[hop] {
					if !nodeMatches(ctx, n, mp) {
						continue
					}
					env := bindings{}
					if np.Var != "" {
						env[np.Var] = NodeVal(start[0])
					}
					if mp.Var != "" {
						env[mp.Var] = NodeVal(n)
					}
					if keep, err := ctx.applyWhere(env, m.Where); err != nil {
						return nil, err
					} else if keep {
						rows = append(rows, env)
					}
				}
			}
			return rows, nil
		}
	}
	// General case: materialize the snapshot.
	g, err := ad.GraphAtContext(ctx.c, ts)
	if err != nil {
		return nil, err
	}
	return e.matchOnGraph(ctx, g, m)
}

// matchRange serves history queries over [start, end): anchored single-node
// patterns return one row per version (Fig 1a); other patterns match the
// window graph.
func (e *Engine) matchRange(ctx *execCtx, m *MatchStmt, win model.Interval) ([]bindings, error) {
	ad := e.Sys.Aion
	if ad == nil {
		return nil, fmt.Errorf("cypher: temporal clause requires Aion")
	}
	if len(m.Patterns) == 1 && len(m.Patterns[0].Nodes) == 1 {
		np := m.Patterns[0].Nodes[0]
		if id, ok := ctx.anchorID(m.Where, np.Var); ok {
			ns, err := ad.GetNodeContext(ctx.c, model.NodeID(id), win.Start, win.End)
			if err != nil {
				return nil, err
			}
			var rows []bindings
			for _, n := range ns {
				if nodeMatches(ctx, n, np) {
					env := bindings{np.Var: NodeVal(n)}
					if keep, err := ctx.applyWhere(env, m.Where); err != nil {
						return nil, err
					} else if keep {
						rows = append(rows, env)
					}
				}
			}
			return rows, nil
		}
	}
	g, err := ad.GetWindowContext(ctx.c, win.Start, win.End)
	if err != nil {
		return nil, err
	}
	return e.matchOnGraph(ctx, g, m)
}

func (ctx *execCtx) applyWhere(env bindings, where Expr) (bool, error) {
	if where == nil {
		return true, nil
	}
	v, err := ctx.evalScalar(env, where)
	if err != nil {
		return false, err
	}
	return truthy(v), nil
}

func nodeMatches(ctx *execCtx, n *model.Node, np NodePattern) bool {
	for _, l := range np.Labels {
		if !n.HasLabel(l) {
			return false
		}
	}
	for k, ex := range np.Props {
		want, err := ctx.evalScalar(bindings{}, ex)
		if err != nil {
			return false
		}
		got, ok := n.Props[k]
		if !ok || !got.Equal(want) {
			return false
		}
	}
	return true
}

func relMatches(ctx *execCtx, r *model.Rel, rp RelPattern) bool {
	if rp.Type != "" && r.Label != rp.Type {
		return false
	}
	for k, ex := range rp.Props {
		want, err := ctx.evalScalar(bindings{}, ex)
		if err != nil {
			return false
		}
		got, ok := r.Props[k]
		if !ok || !got.Equal(want) {
			return false
		}
	}
	return true
}

// matchOnGraph runs backtracking pattern matching over a materialized
// snapshot: each comma-separated pattern extends the binding environments
// (a join on shared variables), and WHERE filters the final rows.
func (e *Engine) matchOnGraph(ctx *execCtx, g *memgraph.Graph, m *MatchStmt) ([]bindings, error) {
	envs := []bindings{{}}
	for _, pat := range m.Patterns {
		var next []bindings
		for _, env := range envs {
			if err := ctx.checkCancel(); err != nil {
				return nil, err
			}
			matched, err := e.matchPattern(ctx, g, pat, env, m.Where)
			if err != nil {
				return nil, err
			}
			next = append(next, matched...)
		}
		envs = next
		if len(envs) == 0 {
			return nil, nil
		}
	}
	var rows []bindings
	for _, env := range envs {
		if err := ctx.checkCancel(); err != nil {
			return nil, err
		}
		keep, err := ctx.applyWhere(env, m.Where)
		if err != nil {
			return nil, err
		}
		if keep {
			rows = append(rows, env)
		}
	}
	return rows, nil
}

// matchPattern matches one path pattern starting from a seed environment,
// returning the extended environments (WHERE is applied later by the
// caller; the where expression here is only used for id-anchor pruning).
func (e *Engine) matchPattern(ctx *execCtx, g *memgraph.Graph, pat PathPattern, seed bindings, where Expr) ([]bindings, error) {
	var rows []bindings

	// Candidate set for the first node: a prior binding or an id anchor
	// avoids the full scan.
	first := pat.Nodes[0]
	var candidates []*model.Node
	if first.Var != "" {
		if bound, ok := seed[first.Var]; ok && bound.Node != nil {
			if n := g.Node(bound.Node.ID); n != nil {
				candidates = []*model.Node{n}
			}
		}
	}
	if candidates == nil {
		if id, ok := ctx.anchorID(where, first.Var); ok {
			if n := g.Node(model.NodeID(id)); n != nil {
				candidates = []*model.Node{n}
			}
		} else {
			g.ForEachNode(func(n *model.Node) bool {
				candidates = append(candidates, n)
				return true
			})
		}
	}

	var extend func(env bindings, step int, cur *model.Node) error
	extend = func(env bindings, step int, cur *model.Node) error {
		if err := ctx.checkCancel(); err != nil {
			return err
		}
		if step == len(pat.Rels) {
			rows = append(rows, env.clone())
			return nil
		}
		rp := pat.Rels[step]
		np := pat.Nodes[step+1]
		tryNeighbour := func(r *model.Rel, nb model.NodeID) error {
			n := g.Node(nb)
			if n == nil || !relMatches(ctx, r, rp) || !nodeMatches(ctx, n, np) {
				return nil
			}
			// Bind and recurse; respect already-bound variables.
			if np.Var != "" {
				if prev, ok := env[np.Var]; ok {
					if prev.Node == nil || prev.Node.ID != n.ID {
						return nil
					}
				}
			}
			saveN, hadN := env[np.Var]
			saveR, hadR := env[rp.Var]
			if np.Var != "" {
				env[np.Var] = NodeVal(n)
			}
			if rp.Var != "" {
				env[rp.Var] = RelVal(r)
			}
			err := extend(env, step+1, n)
			if np.Var != "" {
				if hadN {
					env[np.Var] = saveN
				} else {
					delete(env, np.Var)
				}
			}
			if rp.Var != "" {
				if hadR {
					env[rp.Var] = saveR
				} else {
					delete(env, rp.Var)
				}
			}
			return err
		}

		if rp.VarHops {
			// Variable-length expansion with per-hop frontier (Alg 1).
			type hopNode struct {
				id  model.NodeID
				rel *model.Rel
			}
			frontier := []hopNode{{id: cur.ID}}
			seen := map[model.NodeID]bool{cur.ID: true}
			for hop := 1; hop <= rp.MaxHops; hop++ {
				var next []hopNode
				for _, hn := range frontier {
					var gerr error
					if gerr = ctx.checkCancel(); gerr != nil {
						return gerr
					}
					g.Neighbours(hn.id, rp.Dir, func(r *model.Rel, nb model.NodeID) bool {
						if rp.Type != "" && r.Label != rp.Type {
							return true
						}
						if seen[nb] {
							return true
						}
						seen[nb] = true
						next = append(next, hopNode{id: nb, rel: r})
						return true
					})
					if gerr != nil {
						return gerr
					}
				}
				frontier = next
				if hop >= rp.MinHops {
					for _, hn := range frontier {
						if err := tryNeighbour(hn.rel, hn.id); err != nil {
							return err
						}
					}
				}
			}
			return nil
		}

		var ferr error
		g.Neighbours(cur.ID, rp.Dir, func(r *model.Rel, nb model.NodeID) bool {
			if err := tryNeighbour(r, nb); err != nil {
				ferr = err
				return false
			}
			return true
		})
		return ferr
	}

	for _, n := range candidates {
		if err := ctx.checkCancel(); err != nil {
			return nil, err
		}
		if !nodeMatches(ctx, n, first) {
			continue
		}
		env := seed.clone()
		if first.Var != "" {
			env[first.Var] = NodeVal(n)
		}
		if err := extend(env, 0, n); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// project evaluates the RETURN items (with COUNT aggregation, ORDER BY, and
// LIMIT).
func (e *Engine) project(ctx *execCtx, m *MatchStmt, rows []bindings) (*Result, error) {
	res := &Result{}
	hasCount := false
	for _, item := range m.Return {
		if _, ok := item.E.(CountCall); ok {
			hasCount = true
		}
		res.Columns = append(res.Columns, returnName(item))
	}
	if hasCount {
		out := make([]Val, len(m.Return))
		for i, item := range m.Return {
			if _, ok := item.E.(CountCall); ok {
				out[i] = ScalarVal(model.IntValue(int64(len(rows))))
			} else if len(rows) > 0 {
				v, err := ctx.evalVal(rows[0], item.E)
				if err != nil {
					return nil, err
				}
				out[i] = v
			}
		}
		res.Rows = [][]Val{out}
		return res, nil
	}
	for _, env := range rows {
		if err := ctx.checkCancel(); err != nil {
			return nil, err
		}
		out := make([]Val, len(m.Return))
		for i, item := range m.Return {
			v, err := ctx.evalVal(env, item.E)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		res.Rows = append(res.Rows, out)
	}
	if len(m.Order) > 0 {
		keys := make([][]model.Value, len(res.Rows))
		for i, env := range rows {
			for _, ob := range m.Order {
				v, err := ctx.evalScalar(env, ob.E)
				if err != nil {
					return nil, err
				}
				keys[i] = append(keys[i], v)
			}
		}
		idx := make([]int, len(res.Rows))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			for k, ob := range m.Order {
				c := keys[idx[a]][k].Compare(keys[idx[b]][k])
				if c != 0 {
					if ob.Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
		sorted := make([][]Val, len(res.Rows))
		for i, j := range idx {
			sorted[i] = res.Rows[j]
		}
		res.Rows = sorted
	}
	if m.Limit > 0 && len(res.Rows) > m.Limit {
		res.Rows = res.Rows[:m.Limit]
	}
	return res, nil
}

func returnName(item ReturnItem) string {
	if item.Alias != "" {
		return item.Alias
	}
	switch x := item.E.(type) {
	case VarRef:
		return x.Name
	case PropAccess:
		return x.Var + "." + x.Prop
	case IDCall:
		return "id(" + x.Var + ")"
	case CountCall:
		return "count"
	}
	return "expr"
}

// evalVal evaluates a RETURN expression, preserving entity values.
func (ctx *execCtx) evalVal(env bindings, ex Expr) (Val, error) {
	if vr, ok := ex.(VarRef); ok {
		if v, ok := env[vr.Name]; ok {
			return v, nil
		}
	}
	s, err := ctx.evalScalar(env, ex)
	if err != nil {
		return Val{}, err
	}
	return ScalarVal(s), nil
}
