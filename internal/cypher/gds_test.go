package cypher

import (
	"math"
	"testing"

	"aion/internal/model"
)

// gdsEngine builds a hub graph: nodes 0..4, everyone points at 0, plus a
// triangle 1-2-3 (directed edges 1->2, 2->3, 3->1).
func gdsEngine(t *testing.T) *Engine {
	e := newEngine(t)
	mustQuery(t, e, `CREATE (a:N), (b:N), (c:N), (d:N), (x:N)`, nil)
	mustQuery(t, e, `MATCH (a), (b) WHERE id(a) = 1 AND id(b) = 0 CREATE (a)-[:R {w: 2}]->(b)`, nil)
	mustQuery(t, e, `MATCH (a), (b) WHERE id(a) = 2 AND id(b) = 0 CREATE (a)-[:R {w: 2}]->(b)`, nil)
	mustQuery(t, e, `MATCH (a), (b) WHERE id(a) = 3 AND id(b) = 0 CREATE (a)-[:R {w: 2}]->(b)`, nil)
	mustQuery(t, e, `MATCH (a), (b) WHERE id(a) = 1 AND id(b) = 2 CREATE (a)-[:R {w: 1}]->(b)`, nil)
	mustQuery(t, e, `MATCH (a), (b) WHERE id(a) = 2 AND id(b) = 3 CREATE (a)-[:R {w: 1}]->(b)`, nil)
	mustQuery(t, e, `MATCH (a), (b) WHERE id(a) = 3 AND id(b) = 1 CREATE (a)-[:R {w: 1}]->(b)`, nil)
	if err := e.Sys.Aion.WaitSync(); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestGDSPageRank(t *testing.T) {
	e := gdsEngine(t)
	ts := e.Sys.Host.Clock()
	res := mustQuery(t, e, `CALL aion.gds.pagerank($ts, 3)`,
		params(t, "ts", int64(ts)))
	if len(res.Rows) != 3 {
		t.Fatalf("topK rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].S.Int() != 0 {
		t.Errorf("hub must rank first, got node %v", res.Rows[0][0])
	}
	// Ranks descending.
	if res.Rows[0][1].S.Float() < res.Rows[1][1].S.Float() {
		t.Error("ranks not sorted")
	}
}

func TestGDSWCC(t *testing.T) {
	e := gdsEngine(t)
	ts := e.Sys.Host.Clock()
	res := mustQuery(t, e, `CALL aion.gds.wcc($ts)`, params(t, "ts", int64(ts)))
	// 0..3 connected, node 4 isolated: two components.
	if len(res.Rows) != 2 {
		t.Fatalf("components = %d", len(res.Rows))
	}
	if res.Rows[0][1].S.Int() != 4 || res.Rows[1][1].S.Int() != 1 {
		t.Errorf("component sizes: %v, %v", res.Rows[0][1], res.Rows[1][1])
	}
}

func TestGDSTriangles(t *testing.T) {
	e := gdsEngine(t)
	ts := e.Sys.Host.Clock()
	res := mustQuery(t, e, `CALL aion.gds.triangleCount($ts)`, params(t, "ts", int64(ts)))
	// Triangles: 1-2-3 plus 1-2-0, 2-3-0, 3-1-0 through the hub = 4.
	if res.Rows[0][0].S.Int() != 4 {
		t.Errorf("triangles = %v", res.Rows[0][0])
	}
}

func TestGDSBFSAndSSSP(t *testing.T) {
	e := gdsEngine(t)
	ts := e.Sys.Host.Clock()
	res := mustQuery(t, e, `CALL aion.gds.bfs(1, $ts)`, params(t, "ts", int64(ts)))
	// From 1: reaches 1(0), 2(1), 0(1), 3(2).
	if len(res.Rows) != 4 {
		t.Fatalf("bfs rows = %d", len(res.Rows))
	}
	res = mustQuery(t, e, `CALL aion.gds.sssp(1, $ts, 'w')`, params(t, "ts", int64(ts)))
	dist := map[int64]float64{}
	for _, row := range res.Rows {
		dist[row[0].S.Int()] = row[1].S.Float()
	}
	if dist[0] != 2 { // direct hub edge w=2
		t.Errorf("dist[0] = %v", dist[0])
	}
	if dist[3] != 2 { // 1->2->3 with w=1 each
		t.Errorf("dist[3] = %v", dist[3])
	}
}

func TestGDSLCC(t *testing.T) {
	e := gdsEngine(t)
	ts := e.Sys.Host.Clock()
	res := mustQuery(t, e, `CALL aion.gds.lcc(1, $ts)`, params(t, "ts", int64(ts)))
	// Node 1's neighbours {0, 2, 3}: links among them 2-3, 2-0, 3-0 = 3 of
	// 6 ordered pairs counted twice -> coefficient 1.0? Neighbour links:
	// (2,3), (2,0), (3,0) all present => 3 undirected links / 3 possible.
	lcc := res.Rows[0][0].S.Float()
	if math.Abs(lcc-1.0) > 1e-9 {
		t.Errorf("lcc = %v", lcc)
	}
}

func params(t *testing.T, k string, v int64) map[string]model.Value {
	t.Helper()
	return map[string]model.Value{k: model.IntValue(v)}
}
