package cypher

import (
	"fmt"

	"aion/internal/hostdb"
	"aion/internal/memgraph"
	"aion/internal/model"
)

// execCreate runs a CREATE statement in a host transaction. The after-
// commit listener feeds the changes into Aion (Fig 4 stage 1).
func (e *Engine) execCreate(ctx *execCtx, c *CreateStmt) (*Result, error) {
	res := &Result{}
	env := bindings{}
	tx := e.Sys.Host.Begin()
	for _, pat := range c.Patterns {
		if err := e.createPattern(ctx, tx, pat, env, res); err != nil {
			tx.Rollback()
			return nil, err
		}
	}
	ts, err := tx.Commit()
	if err != nil {
		return nil, err
	}
	res.CommitTS = ts
	for _, item := range c.Return {
		res.Columns = append(res.Columns, returnName(item))
	}
	if len(c.Return) > 0 {
		row := make([]Val, len(c.Return))
		for i, item := range c.Return {
			v, err := ctx.evalVal(env, item.E)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		res.Rows = [][]Val{row}
	}
	return res, nil
}

// createPattern creates (or reuses via bound variables) the nodes of one
// pattern chain and then its relationships, inside the given transaction.
func (e *Engine) createPattern(ctx *execCtx, tx *hostdb.Tx, pat PathPattern, env bindings, res *Result) error {
	ids := make([]model.NodeID, len(pat.Nodes))
	for i, np := range pat.Nodes {
		if np.Var != "" {
			if bound, ok := env[np.Var]; ok && bound.Node != nil {
				ids[i] = bound.Node.ID
				continue
			}
		}
		props, err := ctx.evalProps(np.Props)
		if err != nil {
			return err
		}
		id, err := tx.CreateNode(np.Labels, props)
		if err != nil {
			return err
		}
		ids[i] = id
		res.NodesCreated++
		if np.Var != "" {
			env[np.Var] = NodeVal(tx.Node(id))
		}
	}
	for i, rp := range pat.Rels {
		if rp.VarHops {
			return fmt.Errorf("cypher: cannot CREATE variable-length relationships")
		}
		src, tgt := ids[i], ids[i+1]
		if rp.Dir == model.Incoming {
			src, tgt = tgt, src
		}
		props, err := ctx.evalProps(rp.Props)
		if err != nil {
			return err
		}
		rid, err := tx.CreateRel(src, tgt, rp.Type, props)
		if err != nil {
			return err
		}
		res.RelsCreated++
		if rp.Var != "" {
			env[rp.Var] = RelVal(tx.Rel(rid))
		}
	}
	return nil
}

func (ctx *execCtx) evalProps(exprs map[string]Expr) (model.Properties, error) {
	if len(exprs) == 0 {
		return nil, nil
	}
	props := make(model.Properties, len(exprs))
	for k, ex := range exprs {
		v, err := ctx.evalScalar(bindings{}, ex)
		if err != nil {
			return nil, err
		}
		props[k] = v
	}
	return props, nil
}

// execMatchWrite runs MATCH ... SET / DELETE against the latest graph in a
// host transaction.
func (e *Engine) execMatchWrite(ctx *execCtx, m *MatchStmt) (*Result, error) {
	var rows []bindings
	var err error
	e.Sys.Host.View(func(g *memgraph.Graph) {
		rows, err = e.matchOnGraph(ctx, g, m)
	})
	if err != nil {
		return nil, err
	}
	res := &Result{}
	tx := e.Sys.Host.Begin()
	deletedNodes := map[model.NodeID]bool{}
	deletedRels := map[model.RelID]bool{}
	setApplied := map[string]bool{}
	for _, env := range rows {
		// MATCH ... CREATE: create pattern elements per matched row,
		// reusing bound variables as endpoints.
		for _, pat := range m.Creates {
			if err := e.createPattern(ctx, tx, pat, env, res); err != nil {
				tx.Rollback()
				return nil, err
			}
		}
		for _, item := range m.Sets {
			v, ok := env[item.Var]
			if !ok {
				tx.Rollback()
				return nil, fmt.Errorf("cypher: SET of unbound variable %s", item.Var)
			}
			val, err := ctx.evalScalar(env, item.E)
			if err != nil {
				tx.Rollback()
				return nil, err
			}
			switch {
			case v.Node != nil:
				key := fmt.Sprintf("n%d.%s", v.Node.ID, item.Prop)
				if setApplied[key] {
					continue
				}
				setApplied[key] = true
				if err := tx.SetNodeProps(v.Node.ID, model.Properties{item.Prop: val}, nil); err != nil {
					tx.Rollback()
					return nil, err
				}
			case v.Rel != nil:
				key := fmt.Sprintf("r%d.%s", v.Rel.ID, item.Prop)
				if setApplied[key] {
					continue
				}
				setApplied[key] = true
				if err := tx.SetRelProps(v.Rel.ID, model.Properties{item.Prop: val}, nil); err != nil {
					tx.Rollback()
					return nil, err
				}
			default:
				tx.Rollback()
				return nil, fmt.Errorf("cypher: SET on non-entity %s", item.Var)
			}
			res.PropsSet++
		}
		for _, name := range m.Deletes {
			v, ok := env[name]
			if !ok {
				tx.Rollback()
				return nil, fmt.Errorf("cypher: DELETE of unbound variable %s", name)
			}
			switch {
			case v.Rel != nil:
				if deletedRels[v.Rel.ID] {
					continue
				}
				deletedRels[v.Rel.ID] = true
				if err := tx.DeleteRel(v.Rel.ID); err != nil {
					tx.Rollback()
					return nil, err
				}
				res.RelsDeleted++
			case v.Node != nil:
				if deletedNodes[v.Node.ID] {
					continue
				}
				deletedNodes[v.Node.ID] = true
				if m.Detach {
					// DETACH DELETE: remove incident relationships first.
					for _, rid := range tx.IncidentRels(v.Node.ID) {
						if !deletedRels[rid] {
							deletedRels[rid] = true
							if err := tx.DeleteRel(rid); err != nil {
								tx.Rollback()
								return nil, err
							}
							res.RelsDeleted++
						}
					}
				}
				if err := tx.DeleteNode(v.Node.ID); err != nil {
					tx.Rollback()
					return nil, err
				}
				res.NodesDeleted++
			}
		}
	}
	ts, err := tx.Commit()
	if err != nil {
		return nil, err
	}
	res.CommitTS = ts
	return res, nil
}
