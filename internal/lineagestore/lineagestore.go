// Package lineagestore implements LineageStore (Sec 4.4), Aion's
// fine-grained temporal store: graph updates indexed by entity identifier
// using four B+Trees (Table 2) — nodes, relationships, out-neighbours and
// in-neighbours. Composite keys order first by entity id and then by
// timestamp, so an entity's full history lands in the same or adjacent
// pages and is retrieved with O(log n) seeks plus a short range scan.
//
// Updates are stored in place either as deltas or as fully materialized
// entities. A delta chain threshold (Fig 11; default 4) bounds how many
// deltas may accumulate before the store writes a materialized record,
// trading ~16 % extra storage for fast version reconstruction.
package lineagestore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"aion/internal/btree"
	"aion/internal/enc"
	"aion/internal/model"
	"aion/internal/pagecache"
	"aion/internal/vfs"
)

// DefaultChainThreshold is the delta-chain length at which an entity
// version is materialized; four strikes the paper's best balance (Sec 6.5).
const DefaultChainThreshold = 4

// Options configures a LineageStore.
type Options struct {
	// Dir is the directory for the four index files. It must exist.
	Dir string
	// ChainThreshold is the maximum delta-chain length before
	// materialization; 0 means DefaultChainThreshold, negative disables
	// materialization entirely (pure delta chains, the Fig 11 "32" end).
	ChainThreshold int
	// IndexCachePages is the per-tree page cache budget.
	IndexCachePages int
	// FS is the filesystem the index files live on; nil means the real OS
	// filesystem (used by the crash-recovery tests to inject faults).
	FS vfs.FS
}

func (o *Options) defaults() {
	if o.ChainThreshold == 0 {
		o.ChainThreshold = DefaultChainThreshold
	}
	if o.IndexCachePages <= 0 {
		o.IndexCachePages = 1024
	}
}

// indexFiles are the four on-disk B+Tree files, in fixed order.
var indexFiles = [4]string{"nodes.idx", "rels.idx", "out.idx", "in.idx"}

// Store is a LineageStore instance. Writes are serialized; reads may run
// concurrently with each other.
type Store struct {
	mu    sync.RWMutex
	opts  Options
	fs    vfs.FS
	codec *enc.Codec

	nodes *btree.Tree // KeyNode(id, ts)            -> [chainPos][update record]
	rels  *btree.Tree // KeyRel(id, ts)             -> [chainPos][update record]
	out   *btree.Tree // KeyNeigh4(src, tgt, ts, r) -> NeighValue(r, deleted)
	in    *btree.Tree // KeyNeigh4(tgt, src, ts, r) -> NeighValue(r, deleted)
	pcs   [4]*pagecache.Cache

	lastTS      model.Timestamp
	updateCount uint64
	reset       bool // Open found corrupt indexes and started fresh
}

// Open creates or reopens a LineageStore in opts.Dir. The LineageStore is
// derived data — every record it holds is reconstructible from the
// TimeStore log — so if the index files are corrupt (a crash tore B+Tree
// pages mid-flush) Open resets them to empty instead of failing: the owner
// rebuilds or re-cascades, and queries fall back to the TimeStore meanwhile.
func Open(codec *enc.Codec, opts Options) (*Store, error) {
	opts.defaults()
	if opts.Dir == "" {
		if opts.FS != nil {
			opts.Dir = "lineage"
		} else {
			dir, err := vfs.MkdirTemp("", "aion-lineage-*")
			if err != nil {
				return nil, err
			}
			opts.Dir = dir
		}
	}
	s := &Store{opts: opts, fs: vfs.OrOS(opts.FS), codec: codec, lastTS: -1}
	if err := s.openTrees(); err != nil {
		// Corrupt index files: wipe and start empty.
		if werr := s.Wipe(); werr != nil {
			return nil, fmt.Errorf("lineagestore: open: %v; reset failed: %w", err, werr)
		}
		s.reset = true
	}
	return s, nil
}

// openTrees opens the four index trees; on failure everything already
// opened is closed again.
func (s *Store) openTrees() error {
	trees := [4]**btree.Tree{&s.nodes, &s.rels, &s.out, &s.in}
	for i, name := range indexFiles {
		path := filepath.Join(s.opts.Dir, name)
		// A file cut mid-page is a crash artifact: the B+Tree cannot be
		// trusted even if the early pages parse.
		if sz, err := s.fs.Stat(path); err == nil && sz%pagecache.PageSize != 0 {
			return errors.Join(fmt.Errorf("lineagestore: open %s: truncated mid-page (%d bytes)", name, sz), s.closeTrees())
		}
		pc, err := pagecache.OpenFS(s.fs, path, s.opts.IndexCachePages)
		if err == nil {
			var tree *btree.Tree
			if tree, err = btree.Open(pc); err == nil {
				s.pcs[i], *trees[i] = pc, tree
				continue
			}
			err = errors.Join(err, pc.Close())
		}
		return errors.Join(fmt.Errorf("lineagestore: open %s: %w", name, err), s.closeTrees())
	}
	return nil
}

// closeTrees tears down every open page cache, reporting the first flush
// or close failure (the caller decides whether that is fatal: fatal on
// the open path, surfaced on Wipe).
func (s *Store) closeTrees() error {
	var err error
	for i := range s.pcs {
		if s.pcs[i] != nil {
			err = errors.Join(err, s.pcs[i].Close())
			s.pcs[i] = nil
		}
	}
	s.nodes, s.rels, s.out, s.in = nil, nil, nil, nil
	return err
}

// Wipe discards the on-disk indexes and reopens the store empty. Used for
// corruption recovery and by owners that rebuild the LineageStore from the
// TimeStore log after a reopen.
func (s *Store) Wipe() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Close errors are ignored deliberately: the indexes are corrupt and
	// about to be deleted, so a failed final flush carries no information.
	_ = s.closeTrees()
	for _, name := range indexFiles {
		if err := s.fs.Remove(filepath.Join(s.opts.Dir, name)); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	//aionlint:ignore lockio corruption-recovery path: the wipe must be exclusive with every reader and writer, and runs once per corrupt reopen, not on the serving path
	if err := s.fs.SyncDir(s.opts.Dir); err != nil {
		return err
	}
	s.lastTS, s.updateCount = -1, 0
	return s.openTrees()
}

// Reset reports whether Open found corrupt index files and wiped them.
func (s *Store) Reset() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.reset
}

// AppliedThrough returns the newest timestamp the store has absorbed. As
// LineageStore is updated asynchronously off the commit path (Sec 5.1), it
// may lag the TimeStore; Aion falls back to the TimeStore for queries past
// this point.
func (s *Store) AppliedThrough() model.Timestamp {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.lastTS
}

// Apply indexes one committed update by its entity identifiers.
func (s *Store) Apply(u model.Update) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applyLocked(u)
}

// ApplyBatch indexes a batch of updates under one lock acquisition.
func (s *Store) ApplyBatch(us []model.Update) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, u := range us {
		if err := s.applyLocked(u); err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) applyLocked(u model.Update) error {
	if u.TS < s.lastTS {
		return fmt.Errorf("lineagestore: %w: ts %d after %d", model.ErrNonMonotonic, u.TS, s.lastTS)
	}
	switch u.Kind {
	case model.OpAddNode, model.OpDeleteNode:
		if err := s.putVersion(s.nodes, enc.KeyNode(u.NodeID, u.TS), 0, u); err != nil {
			return err
		}
	case model.OpUpdateNode:
		if err := s.putNodeDelta(u); err != nil {
			return err
		}
	case model.OpAddRel:
		if err := s.putVersion(s.rels, enc.KeyRel(u.RelID, u.TS), 0, u); err != nil {
			return err
		}
		if err := s.out.Put(enc.KeyNeigh4(u.Src, u.Tgt, u.TS, u.RelID), enc.NeighValue(u.RelID, false)); err != nil {
			return err
		}
		if err := s.in.Put(enc.KeyNeigh4(u.Tgt, u.Src, u.TS, u.RelID), enc.NeighValue(u.RelID, false)); err != nil {
			return err
		}
	case model.OpDeleteRel:
		if err := s.putVersion(s.rels, enc.KeyRel(u.RelID, u.TS), 0, u); err != nil {
			return err
		}
		if err := s.out.Put(enc.KeyNeigh4(u.Src, u.Tgt, u.TS, u.RelID), enc.NeighValue(u.RelID, true)); err != nil {
			return err
		}
		if err := s.in.Put(enc.KeyNeigh4(u.Tgt, u.Src, u.TS, u.RelID), enc.NeighValue(u.RelID, true)); err != nil {
			return err
		}
	case model.OpUpdateRel:
		if err := s.putRelDelta(u); err != nil {
			return err
		}
	default:
		return fmt.Errorf("lineagestore: unknown op %v", u.Kind)
	}
	s.lastTS = u.TS
	s.updateCount++
	return nil
}

// putVersion stores a version record with the given delta-chain position.
func (s *Store) putVersion(tree *btree.Tree, key []byte, chainPos int, u model.Update) error {
	buf := make([]byte, 1, 64)
	buf[0] = byte(chainPos)
	buf, err := s.codec.AppendUpdate(buf, u)
	if err != nil {
		return err
	}
	return tree.Put(key, buf)
}

// putNodeDelta stores a node modification, materializing the full state
// when the delta chain reaches the threshold.
func (s *Store) putNodeDelta(u model.Update) error {
	prevPos, n, err := s.reconstructNodeLocked(u.NodeID, u.TS)
	if err != nil {
		return err
	}
	if n == nil {
		return fmt.Errorf("lineagestore: %w: node %d at ts %d", model.ErrNotFound, u.NodeID, u.TS)
	}
	pos := prevPos + 1
	if s.opts.ChainThreshold > 0 && pos >= s.opts.ChainThreshold {
		// Materialize: fold the delta into the reconstructed state and
		// store it as a full record (chain position resets to 0).
		u.ApplyToNode(n)
		m := model.AddNode(u.TS, n.ID, n.Labels, n.Props)
		return s.putVersion(s.nodes, enc.KeyNode(u.NodeID, u.TS), 0, m)
	}
	return s.putVersion(s.nodes, enc.KeyNode(u.NodeID, u.TS), pos, u)
}

// putRelDelta stores a relationship modification, materializing on
// threshold like putNodeDelta.
func (s *Store) putRelDelta(u model.Update) error {
	prevPos, r, err := s.reconstructRelLocked(u.RelID, u.TS)
	if err != nil {
		return err
	}
	if r == nil {
		return fmt.Errorf("lineagestore: %w: rel %d at ts %d", model.ErrNotFound, u.RelID, u.TS)
	}
	pos := prevPos + 1
	if s.opts.ChainThreshold > 0 && pos >= s.opts.ChainThreshold {
		u.ApplyToRel(r)
		m := model.AddRel(u.TS, r.ID, r.Src, r.Tgt, r.Label, r.Props)
		return s.putVersion(s.rels, enc.KeyRel(u.RelID, u.TS), 0, m)
	}
	return s.putVersion(s.rels, enc.KeyRel(u.RelID, u.TS), pos, u)
}

// Stats reports store counters for the benchmark harness.
type Stats struct {
	Updates    uint64
	IndexBytes int64
}

// Stats returns the store's counters and footprint.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Updates:    s.updateCount,
		IndexBytes: s.DiskBytes(),
	}
}

// DiskBytes reports the total on-disk footprint of the four indexes
// (Fig 10 storage accounting).
func (s *Store) DiskBytes() int64 {
	return s.nodes.DiskBytes() + s.rels.DiskBytes() + s.out.DiskBytes() + s.in.DiskBytes()
}

// Flush persists all four indexes.
func (s *Store) Flush() error {
	for _, t := range []*btree.Tree{s.nodes, s.rels, s.out, s.in} {
		if err := t.Flush(); err != nil {
			return err
		}
	}
	return nil
}
