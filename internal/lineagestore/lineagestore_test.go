package lineagestore

import (
	"math/rand"
	"testing"

	"aion/internal/enc"
	"aion/internal/memgraph"
	"aion/internal/model"
	"aion/internal/strstore"
)

func openStore(t *testing.T, opts Options) *Store {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	s, err := Open(enc.NewCodec(strstore.NewMem()), opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func apply(t *testing.T, s *Store, us ...model.Update) {
	t.Helper()
	for _, u := range us {
		if err := s.Apply(u); err != nil {
			t.Fatalf("apply %v: %v", u, err)
		}
	}
}

func TestNodePointLookup(t *testing.T) {
	s := openStore(t, Options{})
	apply(t, s,
		model.AddNode(1, 7, []string{"A"}, model.Properties{"v": model.IntValue(1)}),
		model.UpdateNode(5, 7, nil, nil, model.Properties{"v": model.IntValue(2)}, nil),
		model.DeleteNode(9, 7),
	)
	if ns, _ := s.GetNode(7, 0, 0); len(ns) != 0 {
		t.Error("before creation must be absent")
	}
	ns, err := s.GetNode(7, 3, 3)
	if err != nil || len(ns) != 1 {
		t.Fatalf("at 3: %v %v", ns, err)
	}
	if ns[0].Props["v"].Int() != 1 {
		t.Error("version 1 state")
	}
	if ns[0].Valid.Start != 1 || ns[0].Valid.End != 5 {
		t.Errorf("interval = %+v", ns[0].Valid)
	}
	ns, _ = s.GetNode(7, 6, 6)
	if len(ns) != 1 || ns[0].Props["v"].Int() != 2 {
		t.Error("version 2 state")
	}
	if ns, _ := s.GetNode(7, 9, 9); len(ns) != 0 {
		t.Error("after deletion must be absent")
	}
	if ns, _ := s.GetNode(999, 5, 5); len(ns) != 0 {
		t.Error("unknown node")
	}
}

func TestNodeHistoryRange(t *testing.T) {
	s := openStore(t, Options{})
	apply(t, s,
		model.AddNode(1, 7, nil, model.Properties{"v": model.IntValue(1)}),
		model.UpdateNode(5, 7, nil, nil, model.Properties{"v": model.IntValue(2)}, nil),
		model.DeleteNode(9, 7),
		model.AddNode(12, 7, nil, model.Properties{"v": model.IntValue(3)}),
	)
	hist, err := s.GetNode(7, 0, model.TSInfinity)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 3 {
		t.Fatalf("history has %d versions, want 3", len(hist))
	}
	checks := []struct {
		v          int64
		start, end model.Timestamp
	}{{1, 1, 5}, {2, 5, 9}, {3, 12, model.TSInfinity}}
	for i, c := range checks {
		if hist[i].Props["v"].Int() != c.v || hist[i].Valid.Start != c.start || hist[i].Valid.End != c.end {
			t.Errorf("version %d = v%d %+v, want v%d [%d,%d)",
				i, hist[i].Props["v"].Int(), hist[i].Valid, c.v, c.start, c.end)
		}
	}
	// Bounded range excludes outside versions.
	mid, _ := s.GetNode(7, 5, 9)
	if len(mid) != 1 || mid[0].Props["v"].Int() != 2 {
		t.Errorf("range [5,9): %d versions", len(mid))
	}
	if _, err := s.GetNode(7, 9, 5); err == nil {
		t.Error("inverted interval must fail")
	}
}

func TestRelationshipLifecycle(t *testing.T) {
	s := openStore(t, Options{})
	apply(t, s,
		model.AddNode(1, 0, nil, nil),
		model.AddNode(1, 1, nil, nil),
		model.AddRel(2, 5, 0, 1, "KNOWS", model.Properties{"w": model.FloatValue(1)}),
		model.UpdateRel(4, 5, 0, 1, model.Properties{"w": model.FloatValue(2)}, nil),
		model.DeleteRel(6, 5, 0, 1),
	)
	rs, err := s.GetRelationship(5, 3, 3)
	if err != nil || len(rs) != 1 {
		t.Fatalf("at 3: %v %v", rs, err)
	}
	if rs[0].Label != "KNOWS" || rs[0].Src != 0 || rs[0].Tgt != 1 {
		t.Error("rel identity")
	}
	if rs[0].Props["w"].Float() != 1 {
		t.Error("initial weight")
	}
	rs, _ = s.GetRelationship(5, 5, 5)
	if len(rs) != 1 || rs[0].Props["w"].Float() != 2 {
		t.Error("updated weight")
	}
	if rs, _ := s.GetRelationship(5, 7, 7); len(rs) != 0 {
		t.Error("deleted rel visible")
	}
	hist, _ := s.GetRelationship(5, 0, model.TSInfinity)
	if len(hist) != 2 {
		t.Fatalf("rel history %d versions, want 2", len(hist))
	}
	if hist[1].Valid.End != 6 {
		t.Errorf("last version end = %d, want 6", hist[1].Valid.End)
	}
}

func TestGetRelationshipsDirections(t *testing.T) {
	s := openStore(t, Options{})
	apply(t, s,
		model.AddNode(1, 0, nil, nil),
		model.AddNode(1, 1, nil, nil),
		model.AddNode(1, 2, nil, nil),
		model.AddRel(2, 0, 0, 1, "A", nil), // out of 0
		model.AddRel(3, 1, 2, 0, "B", nil), // in to 0
	)
	out, err := s.GetRelationships(0, model.Outgoing, 4, 4)
	if err != nil || len(out) != 1 || out[0][0].Label != "A" {
		t.Fatalf("outgoing: %v %v", out, err)
	}
	in, _ := s.GetRelationships(0, model.Incoming, 4, 4)
	if len(in) != 1 || in[0][0].Label != "B" {
		t.Fatalf("incoming: %v", in)
	}
	both, _ := s.GetRelationships(0, model.Both, 4, 4)
	if len(both) != 2 {
		t.Fatalf("both: %d", len(both))
	}
	// Before the rels existed.
	none, _ := s.GetRelationships(0, model.Both, 1, 1)
	if len(none) != 0 {
		t.Error("no rels at ts 1")
	}
}

func TestGetRelationshipsAfterDeletion(t *testing.T) {
	s := openStore(t, Options{})
	apply(t, s,
		model.AddNode(1, 0, nil, nil),
		model.AddNode(1, 1, nil, nil),
		model.AddRel(2, 0, 0, 1, "R", nil),
		model.DeleteRel(4, 0, 0, 1),
		model.AddRel(6, 1, 0, 1, "R2", nil), // second rel, same endpoints
	)
	at3, _ := s.GetRelationships(0, model.Outgoing, 3, 3)
	if len(at3) != 1 || at3[0][0].ID != 0 {
		t.Errorf("at 3: %v", at3)
	}
	at5, _ := s.GetRelationships(0, model.Outgoing, 5, 5)
	if len(at5) != 0 {
		t.Errorf("at 5 (gap): %v", at5)
	}
	at7, _ := s.GetRelationships(0, model.Outgoing, 7, 7)
	if len(at7) != 1 || at7[0][0].ID != 1 {
		t.Errorf("at 7: %v", at7)
	}
	// Range covering everything returns both rels' histories.
	all, _ := s.GetRelationships(0, model.Outgoing, 0, model.TSInfinity)
	if len(all) != 2 {
		t.Errorf("full history: %d rels", len(all))
	}
}

func TestMaterializationThresholdCorrectness(t *testing.T) {
	// Regardless of chain threshold, reconstruction must give the same
	// answer; the threshold only changes performance/space (Fig 11).
	for _, threshold := range []int{-1, 1, 2, 4, 8, 16} {
		s := openStore(t, Options{ChainThreshold: threshold})
		apply(t, s, model.AddNode(0, 1, nil, model.Properties{"p0": model.IntValue(0)}))
		for i := 1; i <= 32; i++ {
			apply(t, s, model.UpdateNode(model.Timestamp(i), 1, nil, nil,
				model.Properties{"p" + string(rune('0'+i%10)): model.IntValue(int64(i))}, nil))
		}
		ns, err := s.GetNode(1, 32, 32)
		if err != nil || len(ns) != 1 {
			t.Fatalf("threshold %d: %v %v", threshold, ns, err)
		}
		// Final state must reflect the last write of every key.
		if ns[0].Props["p2"].Int() != 32 {
			t.Errorf("threshold %d: p2 = %d, want 32", threshold, ns[0].Props["p2"].Int())
		}
		// Mid-history lookups too.
		mid, _ := s.GetNode(1, 17, 17)
		if len(mid) != 1 || mid[0].Props["p7"].Int() != 17 {
			t.Errorf("threshold %d: mid-history wrong", threshold)
		}
	}
}

func TestMaterializationReducesStorageVsEveryUpdate(t *testing.T) {
	// Chain threshold 1 (materialize always) must use more index space
	// than threshold 4 under a property-update-heavy load.
	size := func(threshold int) int64 {
		s := openStore(t, Options{ChainThreshold: threshold})
		apply(t, s, model.AddNode(0, 1, nil, bigProps(16)))
		for i := 1; i <= 200; i++ {
			apply(t, s, model.UpdateNode(model.Timestamp(i), 1, nil, nil,
				model.Properties{"k": model.IntValue(int64(i))}, nil))
		}
		return s.DiskBytes()
	}
	always, every4 := size(1), size(4)
	if always <= every4 {
		t.Errorf("materialize-always %d bytes <= threshold-4 %d bytes", always, every4)
	}
}

func bigProps(n int) model.Properties {
	p := model.Properties{}
	for i := 0; i < n; i++ {
		p["prop"+string(rune('a'+i))] = model.StringValue("some payload value")
	}
	return p
}

func TestExpandMatchesAlg1(t *testing.T) {
	// Star: 0 -> 1,2; 1 -> 3; 3 -> 4. All at ts 1..7.
	s := openStore(t, Options{})
	apply(t, s,
		model.AddNode(1, 0, nil, nil),
		model.AddNode(1, 1, nil, nil),
		model.AddNode(1, 2, nil, nil),
		model.AddNode(1, 3, nil, nil),
		model.AddNode(1, 4, nil, nil),
		model.AddRel(2, 0, 0, 1, "R", nil),
		model.AddRel(3, 1, 0, 2, "R", nil),
		model.AddRel(4, 2, 1, 3, "R", nil),
		model.AddRel(5, 3, 3, 4, "R", nil),
	)
	res, err := s.Expand(0, model.Outgoing, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res[0]) != 2 {
		t.Errorf("hop 1: %d nodes", len(res[0]))
	}
	if len(res[1]) != 1 || res[1][0].ID != 3 {
		t.Errorf("hop 2: %v", res[1])
	}
	if len(res[2]) != 1 || res[2][0].ID != 4 {
		t.Errorf("hop 3: %v", res[2])
	}
	// Expanding at a time before the rels existed finds nothing.
	res, _ = s.Expand(0, model.Outgoing, 3, 1)
	if len(res[0]) != 0 {
		t.Error("expand before rels must be empty")
	}
	// Incoming direction walks the reverse edges.
	res, _ = s.Expand(4, model.Incoming, 2, 10)
	if len(res[0]) != 1 || res[0][0].ID != 3 {
		t.Errorf("incoming hop 1: %v", res[0])
	}
	if len(res[1]) != 1 || res[1][0].ID != 1 {
		t.Errorf("incoming hop 2: %v", res[1])
	}
}

func TestMonotonicityEnforced(t *testing.T) {
	s := openStore(t, Options{})
	apply(t, s, model.AddNode(10, 0, nil, nil))
	if err := s.Apply(model.AddNode(5, 1, nil, nil)); err == nil {
		t.Error("decreasing ts must fail")
	}
	if s.AppliedThrough() != 10 {
		t.Errorf("AppliedThrough = %d", s.AppliedThrough())
	}
}

func TestDeltaOnMissingEntityFails(t *testing.T) {
	s := openStore(t, Options{})
	if err := s.Apply(model.UpdateNode(1, 99, nil, nil, nil, nil)); err == nil {
		t.Error("delta for missing node must fail")
	}
	if err := s.Apply(model.UpdateRel(1, 99, 0, 0, nil, nil)); err == nil {
		t.Error("delta for missing rel must fail")
	}
}

// TestCrossCheckAgainstTemporalGraph drives LineageStore and the in-memory
// TGraph with the same random update stream and verifies point lookups
// agree at every timestamp — the core correctness property of the store.
func TestCrossCheckAgainstTemporalGraph(t *testing.T) {
	s := openStore(t, Options{ChainThreshold: 3})
	tg := memgraph.NewTGraph(model.Interval{Start: 0, End: model.TSInfinity})
	rng := rand.New(rand.NewSource(11))

	const nodes = 30
	ts := model.Timestamp(1)
	var updates []model.Update
	add := func(u model.Update) {
		if err := tg.Apply(u); err != nil {
			return // invalid op against current state; skip
		}
		if err := s.Apply(u); err != nil {
			t.Fatalf("lineage rejected %v: %v", u, err)
		}
		updates = append(updates, u)
		ts++
	}
	for i := 0; i < nodes; i++ {
		add(model.AddNode(ts, model.NodeID(i), nil, nil))
	}
	nextRel := model.RelID(0)
	liveRels := map[model.RelID][2]model.NodeID{}
	for step := 0; step < 600; step++ {
		switch rng.Intn(5) {
		case 0, 1, 2:
			src := model.NodeID(rng.Intn(nodes))
			tgt := model.NodeID(rng.Intn(nodes))
			add(model.AddRel(ts, nextRel, src, tgt, "R", nil))
			liveRels[nextRel] = [2]model.NodeID{src, tgt}
			nextRel++
		case 3:
			for rid, ends := range liveRels {
				add(model.DeleteRel(ts, rid, ends[0], ends[1]))
				delete(liveRels, rid)
				break
			}
		case 4:
			id := model.NodeID(rng.Intn(nodes))
			add(model.UpdateNode(ts, id, nil, nil,
				model.Properties{"step": model.IntValue(int64(step))}, nil))
		}
	}

	// Compare states at a sample of timestamps.
	for probe := model.Timestamp(0); probe < ts; probe += 17 {
		for id := model.NodeID(0); id < nodes; id++ {
			want := tg.NodeAt(id, probe)
			got, err := s.GetNode(id, probe, probe)
			if err != nil {
				t.Fatal(err)
			}
			if (want == nil) != (len(got) == 0) {
				t.Fatalf("ts %d node %d: presence mismatch (tg %v, lineage %d)",
					probe, id, want != nil, len(got))
			}
			if want != nil && !want.Props.Equal(got[0].Props) {
				t.Fatalf("ts %d node %d: props %v vs %v", probe, id, want.Props, got[0].Props)
			}
			// Out-degree cross-check.
			wantRels := tg.RelsAt(id, model.Outgoing, probe)
			gotRels, err := s.GetRelationships(id, model.Outgoing, probe, probe)
			if err != nil {
				t.Fatal(err)
			}
			if len(wantRels) != len(gotRels) {
				t.Fatalf("ts %d node %d: out-degree %d vs %d", probe, id, len(wantRels), len(gotRels))
			}
		}
	}
}

func TestReopenPreservesHistory(t *testing.T) {
	dir := t.TempDir()
	strs, err := strstore.Open(dir + "/strings.db")
	if err != nil {
		t.Fatal(err)
	}
	codec := enc.NewCodec(strs)
	s, err := Open(codec, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	apply(t, s,
		model.AddNode(1, 0, []string{"P"}, model.Properties{"v": model.IntValue(1)}),
		model.AddNode(2, 1, nil, nil),
		model.AddRel(3, 0, 0, 1, "R", nil),
		model.UpdateNode(4, 0, nil, nil, model.Properties{"v": model.IntValue(2)}, nil),
	)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := strs.Close(); err != nil {
		t.Fatal(err)
	}

	strs2, err := strstore.Open(dir + "/strings.db")
	if err != nil {
		t.Fatal(err)
	}
	defer strs2.Close()
	s2, err := Open(enc.NewCodec(strs2), Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ns, err := s2.GetNode(0, 3, 3)
	if err != nil || len(ns) != 1 || ns[0].Props["v"].Int() != 1 {
		t.Fatalf("reopened version at 3: %v %v", ns, err)
	}
	ns, _ = s2.GetNode(0, 4, 4)
	if len(ns) != 1 || ns[0].Props["v"].Int() != 2 {
		t.Fatalf("reopened version at 4: %v", ns)
	}
	rels, err := s2.GetRelationships(0, model.Outgoing, 3, 3)
	if err != nil || len(rels) != 1 {
		t.Fatalf("reopened rels: %v %v", rels, err)
	}
	// New appends continue (monotonic state is not persisted across
	// reopen, so the new store accepts any ts >= its own lastTS).
	if err := s2.Apply(model.UpdateNode(9, 0, nil, nil,
		model.Properties{"v": model.IntValue(3)}, nil)); err != nil {
		t.Fatal(err)
	}
	ns, _ = s2.GetNode(0, 9, 9)
	if len(ns) != 1 || ns[0].Props["v"].Int() != 3 {
		t.Fatalf("append after reopen: %v", ns)
	}
}

func TestExpandDirectionBoth(t *testing.T) {
	s := openStore(t, Options{})
	apply(t, s,
		model.AddNode(1, 0, nil, nil),
		model.AddNode(1, 1, nil, nil),
		model.AddNode(1, 2, nil, nil),
		model.AddRel(2, 0, 0, 1, "R", nil), // out of 0
		model.AddRel(3, 1, 2, 0, "R", nil), // in to 0
	)
	res, err := s.Expand(0, model.Both, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res[0]) != 2 {
		t.Errorf("both-direction hop: %d nodes", len(res[0]))
	}
}

func TestGetRelationshipsInvalidInterval(t *testing.T) {
	s := openStore(t, Options{})
	if _, err := s.GetRelationships(0, model.Both, 5, 1); err == nil {
		t.Error("inverted interval must fail")
	}
	if _, err := s.GetRelationship(0, 5, 1); err == nil {
		t.Error("inverted interval must fail")
	}
}
