package lineagestore

import (
	"context"
	"fmt"

	"aion/internal/enc"
	"aion/internal/model"
)

// cancelStride is how many scanned index entries pass between cooperative
// ctx checks: frequent enough that a cancelled query stops in microseconds,
// sparse enough that the check never shows up in a scan profile.
const cancelStride = 256

// reconstructNode rebuilds the node state valid at ts by walking the delta
// chain backwards from the newest version <= ts to the nearest materialized
// record, then folding forward (Sec 4.4). It returns the chain position of
// the newest record and the state (nil if the node is absent at ts). Thanks
// to the materialization threshold the walk is bounded.
func (s *Store) reconstructNode(id model.NodeID, ts model.Timestamp) (int, *model.Node, error) {
	var chain []model.Update
	newestPos := 0
	seekTS := ts
	for {
		k, v, ok, err := s.nodes.SeekFloor(enc.KeyNode(id, seekTS))
		if err != nil {
			return 0, nil, err
		}
		if !ok {
			return 0, nil, nil
		}
		kid, kts := enc.ParseKeyNode(k)
		if kid != id {
			return 0, nil, nil
		}
		u, err := s.codec.DecodeUpdate(v[1:])
		if err != nil {
			return 0, nil, err
		}
		if len(chain) == 0 {
			newestPos = int(v[0])
			if u.Kind == model.OpDeleteNode {
				return newestPos, nil, nil // tombstone is the latest <= ts
			}
		}
		chain = append(chain, u)
		if u.Kind == model.OpAddNode || kts == 0 {
			break // materialized record (or chain start) reached
		}
		seekTS = kts - 1
	}
	// Fold forward (chain is newest-first).
	base := chain[len(chain)-1]
	n := &model.Node{ID: id, Valid: model.Interval{Start: base.TS, End: model.TSInfinity}}
	base.ApplyToNode(n)
	for i := len(chain) - 2; i >= 0; i-- {
		chain[i].ApplyToNode(n)
		n.Valid.Start = chain[i].TS
	}
	return newestPos, n, nil
}

// reconstructRel is the relationship analogue of reconstructNode.
func (s *Store) reconstructRel(id model.RelID, ts model.Timestamp) (int, *model.Rel, error) {
	var chain []model.Update
	newestPos := 0
	seekTS := ts
	for {
		k, v, ok, err := s.rels.SeekFloor(enc.KeyRel(id, seekTS))
		if err != nil {
			return 0, nil, err
		}
		if !ok {
			return 0, nil, nil
		}
		kid, kts := enc.ParseKeyRel(k)
		if kid != id {
			return 0, nil, nil
		}
		u, err := s.codec.DecodeUpdate(v[1:])
		if err != nil {
			return 0, nil, err
		}
		if len(chain) == 0 {
			newestPos = int(v[0])
			if u.Kind == model.OpDeleteRel {
				return newestPos, nil, nil
			}
		}
		chain = append(chain, u)
		if u.Kind == model.OpAddRel || kts == 0 {
			break
		}
		seekTS = kts - 1
	}
	base := chain[len(chain)-1]
	r := &model.Rel{ID: id, Src: base.Src, Tgt: base.Tgt, Label: base.RelLabel,
		Valid: model.Interval{Start: base.TS, End: model.TSInfinity}}
	base.ApplyToRel(r)
	for i := len(chain) - 2; i >= 0; i-- {
		chain[i].ApplyToRel(r)
		r.Valid.Start = chain[i].TS
	}
	return newestPos, r, nil
}

// reconstructNodeLocked / reconstructRelLocked are used on the write path
// (the caller already holds the write lock; the trees have their own
// locks, so these simply alias the read-path reconstruction).
func (s *Store) reconstructNodeLocked(id model.NodeID, ts model.Timestamp) (int, *model.Node, error) {
	return s.reconstructNode(id, ts)
}

func (s *Store) reconstructRelLocked(id model.RelID, ts model.Timestamp) (int, *model.Rel, error) {
	return s.reconstructRel(id, ts)
}

// GetNode returns the node's history between start (inclusive) and end
// (exclusive), one entry per version (Table 1). With start == end it
// returns the single version valid at that instant, if any.
func (s *Store) GetNode(id model.NodeID, start, end model.Timestamp) ([]*model.Node, error) {
	return s.GetNodeContext(context.Background(), id, start, end)
}

// GetNodeContext is GetNode honouring ctx cancellation: the version range
// scan checks ctx every cancelStride entries.
func (s *Store) GetNodeContext(ctx context.Context, id model.NodeID, start, end model.Timestamp) ([]*model.Node, error) {
	if end < start {
		return nil, fmt.Errorf("lineagestore: %w: [%d, %d)", model.ErrInvalidInterval, start, end)
	}
	_, cur, err := s.reconstructNode(id, start)
	if err != nil {
		return nil, err
	}
	if start == end {
		if cur == nil {
			return nil, nil
		}
		s.closeNodeInterval(id, cur)
		return []*model.Node{cur}, nil
	}
	var out []*model.Node
	emit := func(v *model.Node, until model.Timestamp) {
		v.Valid.End = until
		if v.Valid.Valid() && v.Valid.Overlaps(model.Interval{Start: start, End: end}) {
			out = append(out, v)
		}
	}
	scanned := 0
	err = s.nodes.Scan(enc.KeyNode(id, start+1), enc.KeyNode(id, end), func(k, v []byte) bool {
		if scanned++; scanned%cancelStride == 0 {
			if err = ctx.Err(); err != nil {
				return false
			}
		}
		u, derr := s.codec.DecodeUpdate(v[1:])
		if derr != nil {
			err = derr
			return false
		}
		switch u.Kind {
		case model.OpDeleteNode:
			if cur != nil {
				emit(cur, u.TS)
				cur = nil
			}
		case model.OpAddNode: // insertion, re-insertion, or materialized state
			if cur != nil {
				emit(cur, u.TS)
			}
			n := &model.Node{ID: id, Valid: model.Interval{Start: u.TS, End: model.TSInfinity}}
			u.ApplyToNode(n)
			cur = n
		case model.OpUpdateNode:
			if cur != nil {
				emit(cur, u.TS)
				next := cur.Clone()
				next.Valid = model.Interval{Start: u.TS, End: model.TSInfinity}
				u.ApplyToNode(next)
				cur = next
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if cur != nil {
		s.closeNodeInterval(id, cur)
		if cur.Valid.Valid() && cur.Valid.Overlaps(model.Interval{Start: start, End: end}) {
			out = append(out, cur)
		}
	}
	return out, nil
}

// closeNodeInterval fixes a version's open end time by probing for the next
// update past it ("the end time can be inferred by updates that follow",
// Sec 4.2).
func (s *Store) closeNodeInterval(id model.NodeID, n *model.Node) {
	s.nodes.Scan(enc.KeyNode(id, n.Valid.Start+1), enc.KeyNode(id, model.TSInfinity), func(k, v []byte) bool {
		_, ts := enc.ParseKeyNode(k)
		n.Valid.End = ts
		return false
	})
}

func (s *Store) closeRelInterval(id model.RelID, r *model.Rel) {
	s.rels.Scan(enc.KeyRel(id, r.Valid.Start+1), enc.KeyRel(id, model.TSInfinity), func(k, v []byte) bool {
		_, ts := enc.ParseKeyRel(k)
		r.Valid.End = ts
		return false
	})
}

// GetRelationship returns the relationship's history between start and end
// (Table 1); start == end returns the single version at that instant.
func (s *Store) GetRelationship(id model.RelID, start, end model.Timestamp) ([]*model.Rel, error) {
	return s.GetRelationshipContext(context.Background(), id, start, end)
}

// GetRelationshipContext is GetRelationship honouring ctx cancellation.
func (s *Store) GetRelationshipContext(ctx context.Context, id model.RelID, start, end model.Timestamp) ([]*model.Rel, error) {
	if end < start {
		return nil, fmt.Errorf("lineagestore: %w: [%d, %d)", model.ErrInvalidInterval, start, end)
	}
	_, cur, err := s.reconstructRel(id, start)
	if err != nil {
		return nil, err
	}
	if start == end {
		if cur == nil {
			return nil, nil
		}
		s.closeRelInterval(id, cur)
		return []*model.Rel{cur}, nil
	}
	var out []*model.Rel
	emit := func(v *model.Rel, until model.Timestamp) {
		v.Valid.End = until
		if v.Valid.Valid() && v.Valid.Overlaps(model.Interval{Start: start, End: end}) {
			out = append(out, v)
		}
	}
	scanned := 0
	err = s.rels.Scan(enc.KeyRel(id, start+1), enc.KeyRel(id, end), func(k, v []byte) bool {
		if scanned++; scanned%cancelStride == 0 {
			if err = ctx.Err(); err != nil {
				return false
			}
		}
		u, derr := s.codec.DecodeUpdate(v[1:])
		if derr != nil {
			err = derr
			return false
		}
		switch u.Kind {
		case model.OpDeleteRel:
			if cur != nil {
				emit(cur, u.TS)
				cur = nil
			}
		case model.OpAddRel:
			if cur != nil {
				emit(cur, u.TS)
			}
			r := &model.Rel{ID: id, Src: u.Src, Tgt: u.Tgt, Label: u.RelLabel,
				Valid: model.Interval{Start: u.TS, End: model.TSInfinity}}
			u.ApplyToRel(r)
			cur = r
		case model.OpUpdateRel:
			if cur != nil {
				emit(cur, u.TS)
				next := cur.Clone()
				next.Valid = model.Interval{Start: u.TS, End: model.TSInfinity}
				u.ApplyToRel(next)
				cur = next
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if cur != nil {
		s.closeRelInterval(id, cur)
		if cur.Valid.Valid() && cur.Valid.Overlaps(model.Interval{Start: start, End: end}) {
			out = append(out, cur)
		}
	}
	return out, nil
}

// liveRelsAt returns the ids of the relationships incident to a node in
// the given direction that are live at ts, via a range scan over the
// neighbour indexes (Sec 4.4).
func (s *Store) liveRelsAt(ctx context.Context, id model.NodeID, d model.Direction, ts model.Timestamp) ([]model.RelID, error) {
	live := map[model.RelID]bool{}
	var order []model.RelID
	scanned := 0
	var cerr error
	scan := func(tree interface {
		Scan(low, high []byte, fn func(k, v []byte) bool) error
	}) error {
		err := tree.Scan(enc.KeyNeighPrefix(id), enc.KeyNeighPrefix(id+1), func(k, v []byte) bool {
			if scanned++; scanned%cancelStride == 0 {
				if cerr = ctx.Err(); cerr != nil {
					return false
				}
			}
			_, _, ets, _ := enc.ParseKeyNeigh4(k)
			if ets > ts {
				return true // later event; skip (entries per neighbour are time-ordered)
			}
			rel, deleted := enc.ParseNeighValue(v)
			if deleted {
				if live[rel] {
					live[rel] = false
				}
			} else {
				if !live[rel] {
					live[rel] = true
					order = append(order, rel)
				}
			}
			return true
		})
		if cerr != nil {
			return cerr
		}
		return err
	}
	if d == model.Outgoing || d == model.Both {
		if err := scan(s.out); err != nil {
			return nil, err
		}
	}
	if d == model.Incoming || d == model.Both {
		if err := scan(s.in); err != nil {
			return nil, err
		}
	}
	var out []model.RelID
	seen := map[model.RelID]bool{}
	for i, r := range order {
		if i%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if live[r] && !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out, nil
}

// GetRelationships returns a node's (in/out) relationship history between
// start and end (Table 1): one inner slice per incident relationship,
// holding its versions in the interval. With start == end it returns the
// relationships live at that instant, one version each.
func (s *Store) GetRelationships(id model.NodeID, d model.Direction, start, end model.Timestamp) ([][]*model.Rel, error) {
	return s.GetRelationshipsContext(context.Background(), id, d, start, end)
}

// GetRelationshipsContext is GetRelationships honouring ctx cancellation:
// both the neighbour-index collection scans and the per-relationship
// version loops are cancellation points.
func (s *Store) GetRelationshipsContext(ctx context.Context, id model.NodeID, d model.Direction, start, end model.Timestamp) ([][]*model.Rel, error) {
	if end < start {
		return nil, fmt.Errorf("lineagestore: %w: [%d, %d)", model.ErrInvalidInterval, start, end)
	}
	if start == end {
		ids, err := s.liveRelsAt(ctx, id, d, start)
		if err != nil {
			return nil, err
		}
		var out [][]*model.Rel
		for i, rid := range ids {
			if i%cancelStride == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			vs, err := s.GetRelationshipContext(ctx, rid, start, start)
			if err != nil {
				return nil, err
			}
			if len(vs) > 0 {
				out = append(out, vs)
			}
		}
		return out, nil
	}
	// Range: any relationship with an event before end whose validity
	// overlaps the window.
	candidates := map[model.RelID]bool{}
	var order []model.RelID
	scanned := 0
	var cerr error
	collect := func(tree interface {
		Scan(low, high []byte, fn func(k, v []byte) bool) error
	}) error {
		err := tree.Scan(enc.KeyNeighPrefix(id), enc.KeyNeighPrefix(id+1), func(k, v []byte) bool {
			if scanned++; scanned%cancelStride == 0 {
				if cerr = ctx.Err(); cerr != nil {
					return false
				}
			}
			_, _, ets, _ := enc.ParseKeyNeigh4(k)
			if ets >= end {
				return true
			}
			rel, _ := enc.ParseNeighValue(v)
			if !candidates[rel] {
				candidates[rel] = true
				order = append(order, rel)
			}
			return true
		})
		if cerr != nil {
			return cerr
		}
		return err
	}
	if d == model.Outgoing || d == model.Both {
		if err := collect(s.out); err != nil {
			return nil, err
		}
	}
	if d == model.Incoming || d == model.Both {
		if err := collect(s.in); err != nil {
			return nil, err
		}
	}
	var out [][]*model.Rel
	for i, rid := range order {
		if i%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		vs, err := s.GetRelationshipContext(ctx, rid, start, end)
		if err != nil {
			return nil, err
		}
		if len(vs) > 0 {
			out = append(out, vs)
		}
	}
	return out, nil
}

// Expand implements Alg 1: the n-hop neighbourhood of a node at time t,
// translated directly to index lookups. The result holds one slice per hop
// with per-hop deduplication, exactly as in the paper's pseudocode.
func (s *Store) Expand(id model.NodeID, d model.Direction, hops int, ts model.Timestamp) ([][]*model.Node, error) {
	return s.ExpandContext(context.Background(), id, d, hops, ts)
}

// ExpandContext is Expand honouring ctx cancellation: the frontier loop
// checks ctx before expanding each node, so even a densely connected
// neighbourhood stops within one node's worth of index lookups.
func (s *Store) ExpandContext(ctx context.Context, id model.NodeID, d model.Direction, hops int, ts model.Timestamp) ([][]*model.Node, error) {
	result := make([][]*model.Node, hops)
	queue := []model.NodeID{id}
	for hop := 0; hop < hops; hop++ {
		visited := map[model.NodeID]bool{} // S: visited in current hop
		var next []model.NodeID
		for _, cid := range queue {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			relIDs, err := s.liveRelsAt(ctx, cid, d, ts)
			if err != nil {
				return nil, err
			}
			for _, rid := range relIDs {
				_, r, err := s.reconstructRel(rid, ts)
				if err != nil {
					return nil, err
				}
				if r == nil {
					continue
				}
				nid := r.Tgt
				if d == model.Incoming || (d == model.Both && r.Tgt == cid && r.Src != cid) {
					nid = r.Src
				} else if d == model.Both && r.Src == cid {
					nid = r.Tgt
				}
				if visited[nid] {
					continue
				}
				visited[nid] = true
				_, n, err := s.reconstructNode(nid, ts)
				if err != nil {
					return nil, err
				}
				if n != nil {
					result[hop] = append(result[hop], n)
					next = append(next, nid)
				}
			}
		}
		queue = next
		if len(queue) == 0 {
			break
		}
	}
	return result, nil
}
