package lineagestore

import (
	"os"
	"path/filepath"
	"testing"

	"aion/internal/enc"
	"aion/internal/model"
	"aion/internal/pagecache"
	"aion/internal/strstore"
)

func applyChain(t *testing.T, s *Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		u := model.AddNode(model.Timestamp(i+1), model.NodeID(i), []string{"N"},
			model.Properties{"v": model.IntValue(int64(i))})
		if err := s.Apply(u); err != nil {
			t.Fatal(err)
		}
	}
}

// TestOpenResetsTruncatedIndex: a crash can cut an index file mid-page (or
// lose the tail the B+Tree meta points into). The LineageStore is derived
// data, so Open must recover by resetting to empty — never by failing or by
// serving a half-tree.
func TestOpenResetsTruncatedIndex(t *testing.T) {
	dir := t.TempDir()
	codec := enc.NewCodec(strstore.NewMem())
	s, err := Open(codec, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	applyChain(t, s, 64)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	// Cut nodes.idx down to one page + a torn fragment: the meta page still
	// carries a valid magic but the root it points at is gone.
	path := filepath.Join(dir, "nodes.idx")
	if err := os.Truncate(path, pagecache.PageSize+50); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(codec, Options{Dir: dir})
	if err != nil {
		t.Fatalf("open over a truncated index must reset, got %v", err)
	}
	if !s2.Reset() {
		t.Fatal("Reset() must report the corruption recovery")
	}
	if s2.AppliedThrough() != -1 {
		t.Errorf("reset store AppliedThrough = %d, want -1", s2.AppliedThrough())
	}
	// The reset store is fully usable: re-apply and query.
	applyChain(t, s2, 64)
	n, err := s2.GetNode(model.NodeID(7), 64, 65)
	if err != nil || len(n) == 0 {
		t.Fatalf("GetNode after reset+reapply: %v %v", n, err)
	}
	if err := s2.Flush(); err != nil {
		t.Fatal(err)
	}

	// A clean reopen after the reset must not reset again.
	s3, err := Open(codec, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if s3.Reset() {
		t.Error("clean reopen must not report a reset")
	}
}

// TestOpenResetsBadMetaMagic: garbage in the meta page (torn page zero) is
// detected by the B+Tree magic check and also recovers by reset.
func TestOpenResetsBadMetaMagic(t *testing.T) {
	dir := t.TempDir()
	codec := enc.NewCodec(strstore.NewMem())
	s, err := Open(codec, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	applyChain(t, s, 8)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, "rels.idx"), os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("garbage!"), 0); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(codec, Options{Dir: dir})
	if err != nil {
		t.Fatalf("open over a corrupt meta page must reset, got %v", err)
	}
	if !s2.Reset() {
		t.Fatal("Reset() must report the corruption recovery")
	}
}
