// Package btree implements a disk-backed B+Tree over a page cache, standing
// in for the Neo4j B+Tree the paper backs Aion's stores with (Sec 5):
// sorted composite byte keys, O(log n) lookups, range scans, out-of-core
// storage, and seamless integration with the page cache.
//
// Pages are slotted: a 13-byte header, a sorted slot directory growing
// upward, and variable-size cells growing downward from the page end.
// Leaves are singly linked left-to-right for range scans. Deletes drop
// slots without rebalancing (the temporal stores are append-mostly); dead
// cell space is reclaimed by compaction when an insert needs room.
package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"

	"aion/internal/pagecache"
)

const (
	pageSize   = pagecache.PageSize
	headerSize = 13 // flags(1) nkeys(2) cellStart(2) extra(8)
	slotSize   = 2

	flagLeaf = 0x01

	metaMagic = 0x41494f4e42545233 // "AIONBTR3"

	// MaxKeyLen and MaxValLen bound entry sizes so that at least two
	// cells always fit in a page, which the split logic requires.
	MaxKeyLen = 512
	MaxValLen = 1280
)

// Tree is a B+Tree keyed by arbitrary byte strings compared with
// bytes.Compare. It is safe for concurrent use: writers exclude each other
// and readers; readers run concurrently.
type Tree struct {
	mu    sync.RWMutex
	pc    *pagecache.Cache
	meta  pagecache.PageID
	root  pagecache.PageID
	count uint64
}

// Open creates a new tree in an empty cache or reopens an existing one.
func Open(pc *pagecache.Cache) (*Tree, error) {
	t := &Tree{pc: pc}
	if pc.PageCount() == 0 {
		metaID, meta, err := pc.Allocate()
		if err != nil {
			return nil, err
		}
		rootID, root, err := pc.Allocate()
		if err != nil {
			pc.Release(metaID)
			return nil, err
		}
		initPage(root, true)
		pc.MarkDirty(rootID)
		pc.Release(rootID)
		t.meta, t.root = metaID, rootID
		t.writeMeta(meta)
		pc.MarkDirty(metaID)
		pc.Release(metaID)
		return t, nil
	}
	meta, err := pc.Get(0)
	if err != nil {
		return nil, err
	}
	defer pc.Release(0)
	if binary.BigEndian.Uint64(meta) != metaMagic {
		return nil, fmt.Errorf("btree: bad meta magic")
	}
	t.meta = 0
	t.root = pagecache.PageID(binary.BigEndian.Uint64(meta[8:]))
	t.count = binary.BigEndian.Uint64(meta[16:])
	if t.root >= pagecache.PageID(pc.PageCount()) {
		// The meta survived but the file lost the root page (truncation by
		// a crash): the tree is unrecoverable.
		return nil, fmt.Errorf("btree: root page %d beyond file end (%d pages)", t.root, pc.PageCount())
	}
	return t, nil
}

func (t *Tree) writeMeta(meta []byte) {
	binary.BigEndian.PutUint64(meta, metaMagic)
	binary.BigEndian.PutUint64(meta[8:], uint64(t.root))
	binary.BigEndian.PutUint64(meta[16:], t.count)
}

// Flush persists the metadata and all dirty pages.
func (t *Tree) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	meta, err := t.pc.Get(t.meta)
	if err != nil {
		return err
	}
	t.writeMeta(meta)
	t.pc.MarkDirty(t.meta)
	t.pc.Release(t.meta)
	return t.pc.Flush()
}

// Len returns the number of entries.
func (t *Tree) Len() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.count
}

// DiskBytes reports the bytes consumed by the tree's pages.
func (t *Tree) DiskBytes() int64 { return t.pc.DiskBytes() }

// --- page primitives -------------------------------------------------------

func initPage(p []byte, leaf bool) {
	for i := range p[:headerSize] {
		p[i] = 0
	}
	if leaf {
		p[0] = flagLeaf
	}
	setNKeys(p, 0)
	setCellStartRaw(p, pageSize)
}

func isLeaf(p []byte) bool     { return p[0]&flagLeaf != 0 }
func nKeys(p []byte) int       { return int(binary.BigEndian.Uint16(p[1:])) }
func setNKeys(p []byte, n int) { binary.BigEndian.PutUint16(p[1:], uint16(n)) }
func cellStart(p []byte) int   { return int(binary.BigEndian.Uint16(p[3:])) }

// extra holds the next-leaf pointer for leaves and the leftmost child for
// internal pages.
func extra(p []byte) uint64       { return binary.BigEndian.Uint64(p[5:]) }
func setExtra(p []byte, v uint64) { binary.BigEndian.PutUint64(p[5:], v) }

func slotOff(p []byte, i int) int { return int(binary.BigEndian.Uint16(p[headerSize+i*slotSize:])) }
func setSlotOff(p []byte, i, off int) {
	binary.BigEndian.PutUint16(p[headerSize+i*slotSize:], uint16(off))
}

// leaf cell: klen u16 | vlen u16 | key | value
func leafCellKey(p []byte, off int) []byte {
	klen := int(binary.BigEndian.Uint16(p[off:]))
	return p[off+4 : off+4+klen]
}

func leafCellVal(p []byte, off int) []byte {
	klen := int(binary.BigEndian.Uint16(p[off:]))
	vlen := int(binary.BigEndian.Uint16(p[off+2:]))
	return p[off+4+klen : off+4+klen+vlen]
}

func leafCellSize(p []byte, off int) int {
	klen := int(binary.BigEndian.Uint16(p[off:]))
	vlen := int(binary.BigEndian.Uint16(p[off+2:]))
	return 4 + klen + vlen
}

// internal cell: klen u16 | child u64 | key
func intCellKey(p []byte, off int) []byte {
	klen := int(binary.BigEndian.Uint16(p[off:]))
	return p[off+10 : off+10+klen]
}

func intCellChild(p []byte, off int) uint64 { return binary.BigEndian.Uint64(p[off+2:]) }

func intCellSize(p []byte, off int) int {
	return 10 + int(binary.BigEndian.Uint16(p[off:]))
}

func cellKey(p []byte, i int) []byte {
	off := slotOff(p, i)
	if isLeaf(p) {
		return leafCellKey(p, off)
	}
	return intCellKey(p, off)
}

func freeSpace(p []byte) int {
	return cellStart(p) - headerSize - nKeys(p)*slotSize
}

// search returns the index of the first slot whose key is >= key, and
// whether an exact match was found at that index.
func search(p []byte, key []byte) (int, bool) {
	lo, hi := 0, nKeys(p)
	for lo < hi {
		mid := (lo + hi) / 2
		switch bytes.Compare(cellKey(p, mid), key) {
		case -1:
			lo = mid + 1
		case 0:
			return mid, true
		default:
			hi = mid
		}
	}
	return lo, false
}

// insertSlot shifts the slot directory to make room at index i.
func insertSlot(p []byte, i, off int) {
	n := nKeys(p)
	copy(p[headerSize+(i+1)*slotSize:headerSize+(n+1)*slotSize],
		p[headerSize+i*slotSize:headerSize+n*slotSize])
	setSlotOff(p, i, off)
	setNKeys(p, n+1)
}

// removeSlot drops the slot at index i (cell bytes are leaked until
// compaction).
func removeSlot(p []byte, i int) {
	n := nKeys(p)
	copy(p[headerSize+i*slotSize:headerSize+(n-1)*slotSize],
		p[headerSize+(i+1)*slotSize:headerSize+n*slotSize])
	setNKeys(p, n-1)
}

// writeLeafCell appends a leaf cell to the cell area and returns its offset.
func writeLeafCell(p []byte, key, val []byte) int {
	size := 4 + len(key) + len(val)
	off := cellStart(p) - size
	binary.BigEndian.PutUint16(p[off:], uint16(len(key)))
	binary.BigEndian.PutUint16(p[off+2:], uint16(len(val)))
	copy(p[off+4:], key)
	copy(p[off+4+len(key):], val)
	setCellStartRaw(p, off)
	return off
}

// writeIntCell appends an internal cell and returns its offset.
func writeIntCell(p []byte, key []byte, child uint64) int {
	size := 10 + len(key)
	off := cellStart(p) - size
	binary.BigEndian.PutUint16(p[off:], uint16(len(key)))
	binary.BigEndian.PutUint64(p[off+2:], child)
	copy(p[off+10:], key)
	setCellStartRaw(p, off)
	return off
}

func setCellStartRaw(p []byte, n int) { binary.BigEndian.PutUint16(p[3:], uint16(n)) }

// compact rewrites all live cells packed at the page end, reclaiming space
// leaked by removed or replaced cells.
func compact(p []byte) {
	n := nKeys(p)
	type entry struct{ k, v []byte }
	leaf := isLeaf(p)
	entries := make([]entry, n)
	children := make([]uint64, n)
	for i := 0; i < n; i++ {
		off := slotOff(p, i)
		if leaf {
			entries[i] = entry{
				k: append([]byte(nil), leafCellKey(p, off)...),
				v: append([]byte(nil), leafCellVal(p, off)...),
			}
		} else {
			entries[i] = entry{k: append([]byte(nil), intCellKey(p, off)...)}
			children[i] = intCellChild(p, off)
		}
	}
	setCellStartRaw(p, pageSize)
	for i := 0; i < n; i++ {
		var off int
		if leaf {
			off = writeLeafCell(p, entries[i].k, entries[i].v)
		} else {
			off = writeIntCell(p, entries[i].k, children[i])
		}
		setSlotOff(p, i, off)
	}
}
