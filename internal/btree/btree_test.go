package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"aion/internal/pagecache"
)

func newTree(t *testing.T) *Tree {
	t.Helper()
	tr, err := Open(pagecache.OpenMem(256))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestPutGetBasic(t *testing.T) {
	tr := newTree(t)
	if err := tr.Put([]byte("b"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := tr.Get([]byte("a"))
	if err != nil || !ok || string(v) != "1" {
		t.Fatalf("Get(a) = %q %v %v", v, ok, err)
	}
	if _, ok, _ := tr.Get([]byte("zzz")); ok {
		t.Error("missing key found")
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestPutReplace(t *testing.T) {
	tr := newTree(t)
	tr.Put([]byte("k"), []byte("old"))
	tr.Put([]byte("k"), []byte("new"))
	v, ok, _ := tr.Get([]byte("k"))
	if !ok || string(v) != "new" {
		t.Errorf("got %q", v)
	}
	if tr.Len() != 1 {
		t.Errorf("replace must not grow Len: %d", tr.Len())
	}
}

func TestPutValidation(t *testing.T) {
	tr := newTree(t)
	if err := tr.Put(nil, []byte("v")); err == nil {
		t.Error("empty key must fail")
	}
	if err := tr.Put(make([]byte, MaxKeyLen+1), nil); err == nil {
		t.Error("oversized key must fail")
	}
	if err := tr.Put([]byte("k"), make([]byte, MaxValLen+1)); err == nil {
		t.Error("oversized value must fail")
	}
	if err := tr.Put([]byte("k"), make([]byte, MaxValLen)); err != nil {
		t.Errorf("max-size value must succeed: %v", err)
	}
}

func key(i int) []byte { return []byte(fmt.Sprintf("key-%08d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("val-%d", i)) }

func TestManyInsertsAscending(t *testing.T) {
	tr := newTree(t)
	const n = 5000
	for i := 0; i < n; i++ {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	for i := 0; i < n; i++ {
		v, ok, err := tr.Get(key(i))
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("get %d: %q %v %v", i, v, ok, err)
		}
	}
}

func TestManyInsertsRandomOrder(t *testing.T) {
	tr := newTree(t)
	const n = 5000
	perm := rand.New(rand.NewSource(7)).Perm(n)
	for _, i := range perm {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		v, ok, _ := tr.Get(key(i))
		if !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("get %d failed", i)
		}
	}
}

func TestScanRangeAndOrder(t *testing.T) {
	tr := newTree(t)
	const n = 2000
	for _, i := range rand.New(rand.NewSource(3)).Perm(n) {
		tr.Put(key(i), val(i))
	}
	var got []string
	err := tr.Scan(key(100), key(200), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("scan returned %d entries, want 100", len(got))
	}
	if !sort.StringsAreSorted(got) {
		t.Error("scan must be ordered")
	}
	if got[0] != string(key(100)) || got[99] != string(key(199)) {
		t.Errorf("bounds: first %s last %s", got[0], got[99])
	}
}

func TestScanEarlyStopAndFullScan(t *testing.T) {
	tr := newTree(t)
	for i := 0; i < 100; i++ {
		tr.Put(key(i), val(i))
	}
	count := 0
	tr.Scan(nil, nil, func(k, v []byte) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Errorf("early stop at %d", count)
	}
	count = 0
	tr.Scan(nil, nil, func(k, v []byte) bool { count++; return true })
	if count != 100 {
		t.Errorf("full scan = %d", count)
	}
}

func TestDelete(t *testing.T) {
	tr := newTree(t)
	for i := 0; i < 500; i++ {
		tr.Put(key(i), val(i))
	}
	for i := 0; i < 500; i += 2 {
		ok, err := tr.Delete(key(i))
		if err != nil || !ok {
			t.Fatalf("delete %d: %v %v", i, ok, err)
		}
	}
	if ok, _ := tr.Delete(key(0)); ok {
		t.Error("double delete must report missing")
	}
	for i := 0; i < 500; i++ {
		_, ok, _ := tr.Get(key(i))
		if (i%2 == 0) == ok {
			t.Fatalf("key %d presence wrong: %v", i, ok)
		}
	}
	if tr.Len() != 250 {
		t.Errorf("Len = %d, want 250", tr.Len())
	}
}

func TestSeekFloor(t *testing.T) {
	tr := newTree(t)
	for i := 0; i < 1000; i += 10 {
		tr.Put(key(i), val(i))
	}
	k, v, ok, err := tr.SeekFloor(key(55))
	if err != nil || !ok {
		t.Fatal(err, ok)
	}
	if !bytes.Equal(k, key(50)) || !bytes.Equal(v, val(50)) {
		t.Errorf("floor(55) = %s", k)
	}
	// Exact hit.
	k, _, ok, _ = tr.SeekFloor(key(70))
	if !ok || !bytes.Equal(k, key(70)) {
		t.Errorf("floor(70) = %s", k)
	}
	// Below minimum.
	_, _, ok, _ = tr.SeekFloor([]byte("a"))
	if ok {
		t.Error("floor below min must be absent")
	}
	// Above maximum.
	k, _, ok, _ = tr.SeekFloor([]byte("zzzz"))
	if !ok || !bytes.Equal(k, key(990)) {
		t.Errorf("floor(max) = %s", k)
	}
}

func TestSeekFloorAfterDeletions(t *testing.T) {
	tr := newTree(t)
	for i := 0; i < 2000; i++ {
		tr.Put(key(i), val(i))
	}
	// Delete a whole band so the floor search has to backtrack across
	// subtrees.
	for i := 1000; i < 1900; i++ {
		tr.Delete(key(i))
	}
	k, _, ok, err := tr.SeekFloor(key(1895))
	if err != nil || !ok {
		t.Fatal(err, ok)
	}
	if !bytes.Equal(k, key(999)) {
		t.Errorf("floor across deleted band = %s, want %s", k, key(999))
	}
}

func TestFirst(t *testing.T) {
	tr := newTree(t)
	if _, _, ok, _ := tr.First(); ok {
		t.Error("empty tree has no first")
	}
	tr.Put(key(5), val(5))
	tr.Put(key(1), val(1))
	k, _, ok, _ := tr.First()
	if !ok || !bytes.Equal(k, key(1)) {
		t.Errorf("First = %s", k)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tree.db")
	pc, err := pagecache.Open(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Open(pc)
	if err != nil {
		t.Fatal(err)
	}
	const n = 3000
	for i := 0; i < n; i++ {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := pc.Close(); err != nil {
		t.Fatal(err)
	}

	pc2, err := pagecache.Open(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer pc2.Close()
	tr2, err := Open(pc2)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Len() != n {
		t.Fatalf("reopened Len = %d, want %d", tr2.Len(), n)
	}
	for i := 0; i < n; i += 97 {
		v, ok, err := tr2.Get(key(i))
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("reopened get %d: %v %v", i, ok, err)
		}
	}
}

func TestOutOfCoreSmallCache(t *testing.T) {
	// A cache far smaller than the data forces eviction during both
	// inserts and scans.
	pc := pagecache.OpenMem(16)
	tr, err := Open(pc)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	for i := 0; i < n; i++ {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if pc.Stats().Evictions == 0 {
		t.Fatal("expected evictions with tiny cache")
	}
	count := 0
	prev := []byte(nil)
	err = tr.Scan(nil, nil, func(k, v []byte) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("out of order at %d", count)
		}
		prev = append(prev[:0], k...)
		count++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("scan count = %d, want %d", count, n)
	}
}

// TestRandomizedAgainstReferenceModel drives the tree with a random op mix
// and cross-checks every result against a plain map (property-based model
// test of the Put/Get/Delete/Scan invariants).
func TestRandomizedAgainstReferenceModel(t *testing.T) {
	tr := newTree(t)
	ref := map[string]string{}
	rng := rand.New(rand.NewSource(99))
	for step := 0; step < 20000; step++ {
		k := key(rng.Intn(3000))
		switch rng.Intn(4) {
		case 0, 1: // put
			v := val(rng.Intn(1 << 20))
			if err := tr.Put(k, v); err != nil {
				t.Fatal(err)
			}
			ref[string(k)] = string(v)
		case 2: // get
			v, ok, err := tr.Get(k)
			if err != nil {
				t.Fatal(err)
			}
			want, wantOK := ref[string(k)]
			if ok != wantOK || (ok && string(v) != want) {
				t.Fatalf("step %d: get %s = %q/%v, want %q/%v", step, k, v, ok, want, wantOK)
			}
		case 3: // delete
			ok, err := tr.Delete(k)
			if err != nil {
				t.Fatal(err)
			}
			_, wantOK := ref[string(k)]
			if ok != wantOK {
				t.Fatalf("step %d: delete %s = %v, want %v", step, k, ok, wantOK)
			}
			delete(ref, string(k))
		}
	}
	if int(tr.Len()) != len(ref) {
		t.Fatalf("Len = %d, ref %d", tr.Len(), len(ref))
	}
	// Final full-order check.
	want := make([]string, 0, len(ref))
	for k := range ref {
		want = append(want, k)
	}
	sort.Strings(want)
	i := 0
	tr.Scan(nil, nil, func(k, v []byte) bool {
		if i >= len(want) || string(k) != want[i] || string(v) != ref[want[i]] {
			t.Fatalf("scan mismatch at %d: %s", i, k)
		}
		i++
		return true
	})
	if i != len(want) {
		t.Fatalf("scan visited %d, want %d", i, len(want))
	}
}

func BenchmarkPut(b *testing.B) {
	tr, _ := Open(pagecache.OpenMem(4096))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Put(key(i), val(i))
	}
}

func BenchmarkGet(b *testing.B) {
	tr, _ := Open(pagecache.OpenMem(4096))
	const n = 100000
	for i := 0; i < n; i++ {
		tr.Put(key(i), val(i))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Get(key(i % n))
	}
}
