package btree

import (
	"bytes"
	"fmt"

	"aion/internal/pagecache"
)

// Get returns a copy of the value stored under key.
func (t *Tree) Get(key []byte) ([]byte, bool, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	pid := t.root
	for {
		p, err := t.pc.Get(pid)
		if err != nil {
			return nil, false, err
		}
		if isLeaf(p) {
			i, exact := search(p, key)
			if !exact {
				t.pc.Release(pid)
				return nil, false, nil
			}
			v := append([]byte(nil), leafCellVal(p, slotOff(p, i))...)
			t.pc.Release(pid)
			return v, true, nil
		}
		next := childFor(p, key)
		t.pc.Release(pid)
		pid = next
	}
}

// childFor picks the child page that covers key in an internal page.
func childFor(p []byte, key []byte) pagecache.PageID {
	i, exact := search(p, key)
	if exact {
		return pagecache.PageID(intCellChild(p, slotOff(p, i)))
	}
	// i is the first cell with key greater than target; the covering child
	// is the one before it (or the leftmost child).
	if i == 0 {
		return pagecache.PageID(extra(p))
	}
	return pagecache.PageID(intCellChild(p, slotOff(p, i-1)))
}

type splitResult struct {
	sep   []byte
	right pagecache.PageID
}

// Put inserts or replaces the value under key.
func (t *Tree) Put(key, val []byte) error {
	if len(key) == 0 || len(key) > MaxKeyLen {
		return fmt.Errorf("btree: key length %d out of range [1,%d]", len(key), MaxKeyLen)
	}
	if len(val) > MaxValLen {
		return fmt.Errorf("btree: value length %d exceeds %d", len(val), MaxValLen)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	split, added, err := t.insert(t.root, key, val)
	if err != nil {
		return err
	}
	if added {
		t.count++
	}
	if split != nil {
		// Grow the tree: new root with the old root as leftmost child.
		newRootID, root, err := t.pc.Allocate()
		if err != nil {
			return err
		}
		initPage(root, false)
		setExtra(root, uint64(t.root))
		off := writeIntCell(root, split.sep, uint64(split.right))
		insertSlot(root, 0, off)
		t.pc.MarkDirty(newRootID)
		t.pc.Release(newRootID)
		t.root = newRootID
	}
	return nil
}

func (t *Tree) insert(pid pagecache.PageID, key, val []byte) (*splitResult, bool, error) {
	p, err := t.pc.Get(pid)
	if err != nil {
		return nil, false, err
	}
	defer t.pc.Release(pid)

	if isLeaf(p) {
		i, exact := search(p, key)
		if exact {
			// Replace: drop the old slot (leaking its cell) and insert.
			removeSlot(p, i)
		}
		need := 4 + len(key) + len(val) + slotSize
		if freeSpace(p) < need {
			compact(p)
		}
		if freeSpace(p) >= need {
			off := writeLeafCell(p, key, val)
			insertSlot(p, i, off)
			t.pc.MarkDirty(pid)
			return nil, !exact, nil
		}
		split, err := t.splitLeaf(pid, p, i, key, val)
		return split, !exact, err
	}

	childIdx, _ := searchChildIdx(p, key)
	child := childAt(p, childIdx)
	split, added, err := t.insert(child, key, val)
	if err != nil || split == nil {
		return nil, added, err
	}
	// Insert the promoted separator into this internal page.
	i, _ := search(p, split.sep)
	need := 10 + len(split.sep) + slotSize
	if freeSpace(p) < need {
		compact(p)
	}
	if freeSpace(p) >= need {
		off := writeIntCell(p, split.sep, uint64(split.right))
		insertSlot(p, i, off)
		t.pc.MarkDirty(pid)
		return nil, added, nil
	}
	up, err := t.splitInternal(pid, p, i, split)
	return up, added, err
}

// searchChildIdx returns the child index (0..nkeys) covering key: 0 is the
// leftmost child, i>0 means the child of cell i-1.
func searchChildIdx(p []byte, key []byte) (int, bool) {
	i, exact := search(p, key)
	if exact {
		return i + 1, true
	}
	return i, false
}

func childAt(p []byte, idx int) pagecache.PageID {
	if idx == 0 {
		return pagecache.PageID(extra(p))
	}
	return pagecache.PageID(intCellChild(p, slotOff(p, idx-1)))
}

// splitLeaf distributes the page's cells plus the pending (key,val) across
// the old page and a fresh right sibling, returning the separator.
func (t *Tree) splitLeaf(pid pagecache.PageID, p []byte, insertAt int, key, val []byte) (*splitResult, error) {
	n := nKeys(p)
	type kv struct{ k, v []byte }
	all := make([]kv, 0, n+1)
	for i := 0; i < n; i++ {
		off := slotOff(p, i)
		all = append(all, kv{
			k: append([]byte(nil), leafCellKey(p, off)...),
			v: append([]byte(nil), leafCellVal(p, off)...),
		})
	}
	all = append(all, kv{})
	copy(all[insertAt+1:], all[insertAt:])
	all[insertAt] = kv{k: append([]byte(nil), key...), v: append([]byte(nil), val...)}

	mid := len(all) / 2
	if insertAt == n {
		// Rightmost append (sequential inserts, e.g. time- or id-ordered
		// keys): leave the left page full and start a fresh right page,
		// which keeps fill near 100 % instead of 50 %.
		mid = n
	}
	rightID, right, err := t.pc.Allocate()
	if err != nil {
		return nil, err
	}
	defer t.pc.Release(rightID)
	initPage(right, true)
	setExtra(right, extra(p)) // chain: right inherits old next pointer
	initPage(p, true)
	setExtra(p, uint64(rightID))

	for i, e := range all[:mid] {
		insertSlotAtEnd(p, i, writeLeafCell(p, e.k, e.v))
	}
	for i, e := range all[mid:] {
		insertSlotAtEnd(right, i, writeLeafCell(right, e.k, e.v))
	}
	t.pc.MarkDirty(pid)
	t.pc.MarkDirty(rightID)
	return &splitResult{sep: append([]byte(nil), all[mid].k...), right: rightID}, nil
}

// insertSlotAtEnd appends slot i (cells are inserted in order during
// splits, so no shifting is needed).
func insertSlotAtEnd(p []byte, i, off int) {
	setSlotOff(p, i, off)
	setNKeys(p, i+1)
}

// splitInternal splits an internal page while inserting the pending
// separator, promoting the middle key.
func (t *Tree) splitInternal(pid pagecache.PageID, p []byte, insertAt int, pending *splitResult) (*splitResult, error) {
	n := nKeys(p)
	type cell struct {
		k     []byte
		child uint64
	}
	all := make([]cell, 0, n+1)
	for i := 0; i < n; i++ {
		off := slotOff(p, i)
		all = append(all, cell{
			k:     append([]byte(nil), intCellKey(p, off)...),
			child: intCellChild(p, off),
		})
	}
	all = append(all, cell{})
	copy(all[insertAt+1:], all[insertAt:])
	all[insertAt] = cell{k: pending.sep, child: uint64(pending.right)}

	mid := len(all) / 2
	promoted := all[mid]

	rightID, right, err := t.pc.Allocate()
	if err != nil {
		return nil, err
	}
	defer t.pc.Release(rightID)
	initPage(right, false)
	setExtra(right, promoted.child) // promoted key's child becomes right's leftmost

	leftmost := extra(p)
	initPage(p, false)
	setExtra(p, leftmost)

	for i, c := range all[:mid] {
		insertSlotAtEnd(p, i, writeIntCell(p, c.k, c.child))
	}
	for i, c := range all[mid+1:] {
		insertSlotAtEnd(right, i, writeIntCell(right, c.k, c.child))
	}
	t.pc.MarkDirty(pid)
	t.pc.MarkDirty(rightID)
	return &splitResult{sep: promoted.k, right: rightID}, nil
}

// Delete removes key, reporting whether it was present. Pages are not
// rebalanced; space is reclaimed lazily by compaction.
func (t *Tree) Delete(key []byte) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	pid := t.root
	for {
		p, err := t.pc.Get(pid)
		if err != nil {
			return false, err
		}
		if isLeaf(p) {
			i, exact := search(p, key)
			if exact {
				removeSlot(p, i)
				t.pc.MarkDirty(pid)
				t.count--
			}
			t.pc.Release(pid)
			return exact, nil
		}
		next := childFor(p, key)
		t.pc.Release(pid)
		pid = next
	}
}

// Scan calls fn for each entry with low <= key < high in key order. A nil
// low starts at the smallest key; a nil high scans to the end. The key and
// value slices passed to fn alias page memory and are only valid during the
// callback; fn must copy them to retain. Scanning stops early when fn
// returns false.
func (t *Tree) Scan(low, high []byte, fn func(k, v []byte) bool) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.scanLocked(low, high, fn)
}

func (t *Tree) scanLocked(low, high []byte, fn func(k, v []byte) bool) error {
	// Descend to the leaf covering low.
	pid := t.root
	for {
		p, err := t.pc.Get(pid)
		if err != nil {
			return err
		}
		if isLeaf(p) {
			start := 0
			if low != nil {
				start, _ = search(p, low)
			}
			// Walk this leaf and then follow next pointers.
			for {
				n := nKeys(p)
				for i := start; i < n; i++ {
					off := slotOff(p, i)
					k := leafCellKey(p, off)
					if high != nil && bytes.Compare(k, high) >= 0 {
						t.pc.Release(pid)
						return nil
					}
					if !fn(k, leafCellVal(p, off)) {
						t.pc.Release(pid)
						return nil
					}
				}
				next := pagecache.PageID(extra(p))
				t.pc.Release(pid)
				if next == 0 {
					return nil
				}
				pid = next
				p, err = t.pc.Get(pid)
				if err != nil {
					return err
				}
				start = 0
			}
		}
		var next pagecache.PageID
		if low == nil {
			next = pagecache.PageID(extra(p))
		} else {
			next = childFor(p, low)
		}
		t.pc.Release(pid)
		pid = next
	}
}

// SeekFloor returns copies of the largest entry with key <= target, if any.
func (t *Tree) SeekFloor(target []byte) (k, v []byte, ok bool, err error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.floor(t.root, target)
}

func (t *Tree) floor(pid pagecache.PageID, target []byte) (k, v []byte, ok bool, err error) {
	p, err := t.pc.Get(pid)
	if err != nil {
		return nil, nil, false, err
	}
	if isLeaf(p) {
		i, exact := search(p, target)
		if !exact {
			i-- // largest key strictly below target
		}
		if i < 0 {
			t.pc.Release(pid)
			return nil, nil, false, nil
		}
		off := slotOff(p, i)
		k = append([]byte(nil), leafCellKey(p, off)...)
		v = append([]byte(nil), leafCellVal(p, off)...)
		t.pc.Release(pid)
		return k, v, true, nil
	}
	idx, _ := searchChildIdx(p, target)
	for ; idx >= 0; idx-- {
		child := childAt(p, idx)
		k, v, ok, err = t.floor(child, target)
		if err != nil || ok {
			t.pc.Release(pid)
			return k, v, ok, err
		}
		// The chosen subtree held nothing <= target (possible after
		// deletions); fall back to the previous subtree, whose keys are
		// all smaller.
	}
	t.pc.Release(pid)
	return nil, nil, false, nil
}

// First returns copies of the smallest entry, if any.
func (t *Tree) First() (k, v []byte, ok bool, err error) {
	err = t.Scan(nil, nil, func(key, val []byte) bool {
		k = append([]byte(nil), key...)
		v = append([]byte(nil), val...)
		ok = true
		return false
	})
	return k, v, ok, err
}
