package btree

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"aion/internal/pagecache"
)

// TestSeekFloorMatchesReference cross-checks SeekFloor against a sorted
// reference slice under random inserts, deletes, and probes.
func TestSeekFloorMatchesReference(t *testing.T) {
	tr, err := Open(pagecache.OpenMem(512))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	present := map[string]string{}
	randKey := func() []byte {
		b := make([]byte, 1+rng.Intn(12))
		for i := range b {
			b[i] = byte('a' + rng.Intn(6))
		}
		return b
	}
	floorRef := func(target []byte) (string, bool) {
		keys := make([]string, 0, len(present))
		for k := range present {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		i := sort.SearchStrings(keys, string(target))
		if i < len(keys) && keys[i] == string(target) {
			return keys[i], true
		}
		if i == 0 {
			return "", false
		}
		return keys[i-1], true
	}
	for step := 0; step < 8000; step++ {
		switch rng.Intn(4) {
		case 0, 1:
			k := randKey()
			v := randKey()
			if err := tr.Put(k, v); err != nil {
				t.Fatal(err)
			}
			present[string(k)] = string(v)
		case 2:
			k := randKey()
			tr.Delete(k)
			delete(present, string(k))
		case 3:
			target := randKey()
			gotK, gotV, ok, err := tr.SeekFloor(target)
			if err != nil {
				t.Fatal(err)
			}
			wantK, wantOK := floorRef(target)
			if ok != wantOK {
				t.Fatalf("step %d: floor(%q) ok=%v want %v", step, target, ok, wantOK)
			}
			if ok && (string(gotK) != wantK || string(gotV) != present[wantK]) {
				t.Fatalf("step %d: floor(%q) = %q/%q, want %q/%q",
					step, target, gotK, gotV, wantK, present[wantK])
			}
		}
	}
}

// TestSequentialSplitKeepsPagesFull verifies the rightmost-append split
// optimization: ascending inserts should fill pages near 100 % rather than
// the 50 % a half-split would leave.
func TestSequentialSplitKeepsPagesFull(t *testing.T) {
	pc := pagecache.OpenMem(1 << 16)
	tr, _ := Open(pc)
	payload := 0
	for i := 0; i < 30000; i++ {
		k := key(i) // ascending
		v := val(i)
		tr.Put(k, v)
		payload += len(k) + len(v) + 4 + 2
	}
	fill := float64(payload) / float64(tr.DiskBytes())
	if fill < 0.85 {
		t.Errorf("sequential fill factor = %.2f, want >= 0.85", fill)
	}
	// And the data is still correct.
	for i := 0; i < 30000; i += 997 {
		v, ok, _ := tr.Get(key(i))
		if !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("get %d after sequential load", i)
		}
	}
}
