package netfault

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// echoServer accepts conns on l and echoes every byte back until EOF.
func echoServer(t *testing.T, l net.Listener) *sync.WaitGroup {
	t.Helper()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer c.Close()
				buf := make([]byte, 4096)
				for {
					n, err := c.Read(buf)
					if n > 0 {
						if _, werr := c.Write(buf[:n]); werr != nil {
							return
						}
					}
					if err != nil {
						return
					}
				}
			}()
		}
	}()
	return &wg
}

// startEcho spins up a fault-wrapped echo server and returns its address.
func startEcho(t *testing.T, nw *Network) string {
	t.Helper()
	l, err := nw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	echoServer(t, l)
	return l.Addr().String()
}

func dialEcho(t *testing.T, nw *Network, addr string) net.Conn {
	t.Helper()
	c, err := nw.Dialer(nil)(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestCleanEcho(t *testing.T) {
	nw := New(1)
	addr := startEcho(t, nw)
	c := dialEcho(t, nw, addr)
	msg := []byte("hello temporal world")
	if _, err := c.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := make([]byte, len(msg))
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo mismatch: %q", got)
	}
	// Client write + server echo write both cross the network.
	if ops := nw.Ops(); ops != 2 {
		t.Fatalf("ops = %d, want 2", ops)
	}
}

func TestScriptedDropSeversConn(t *testing.T) {
	nw := New(1)
	addr := startEcho(t, nw)
	c := dialEcho(t, nw, addr)
	nw.ScriptAt(1, Fault{Kind: Drop})
	if _, err := c.Write([]byte("doomed")); !errors.Is(err, ErrSevered) {
		t.Fatalf("write err = %v, want ErrSevered", err)
	}
	// The conn is dead in both directions.
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, ErrSevered) {
		t.Fatalf("read err = %v, want ErrSevered", err)
	}
	if st := nw.Stats(); st.Injected["drop"] != 1 || st.Severed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestScriptedTruncateTearsFrame(t *testing.T) {
	nw := New(1)
	addr := startEcho(t, nw)
	c := dialEcho(t, nw, addr)
	nw.ScriptAt(1, Fault{Kind: Truncate})
	msg := []byte("0123456789")
	if _, err := c.Write(msg); !errors.Is(err, ErrSevered) {
		t.Fatalf("write err = %v, want ErrSevered", err)
	}
	// The peer echoed the delivered prefix before seeing the close; a raw
	// dial would observe it, but this side is severed — just confirm the
	// stats recorded a truncation, not a clean write.
	if st := nw.Stats(); st.Injected["truncate"] != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestScriptedDuplicateDelivers(t *testing.T) {
	nw := New(1)
	addr := startEcho(t, nw)
	c := dialEcho(t, nw, addr)
	nw.ScriptAt(1, Fault{Kind: Duplicate})
	msg := []byte("dup")
	if _, err := c.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := make([]byte, 2*len(msg))
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if want := []byte("dupdup"); !bytes.Equal(got, want) {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestScriptedCorruptFlipsByte(t *testing.T) {
	nw := New(1)
	addr := startEcho(t, nw)
	c := dialEcho(t, nw, addr)
	nw.ScriptAt(1, Fault{Kind: Corrupt})
	msg := []byte("intact-bytes")
	if _, err := c.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := make([]byte, len(msg))
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if bytes.Equal(got, msg) {
		t.Fatal("corrupt fault delivered intact bytes")
	}
	diff := 0
	for i := range msg {
		if got[i] != msg[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1", diff)
	}
}

func TestHalfOpenSwallowsWrites(t *testing.T) {
	nw := New(1)
	addr := startEcho(t, nw)
	c := dialEcho(t, nw, addr)
	nw.ScriptAt(1, Fault{Kind: HalfOpen})
	if _, err := c.Write([]byte("vanishes")); err != nil {
		t.Fatalf("half-open write should report success, got %v", err)
	}
	if _, err := c.Write([]byte("still vanishes")); err != nil {
		t.Fatalf("later write should also report success, got %v", err)
	}
	c.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	_, err := c.Read(make([]byte, 1))
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("read err = %v, want timeout (nothing was delivered)", err)
	}
	if st := nw.Stats(); st.Swallowed < 2 {
		t.Fatalf("stats = %+v, want >=2 swallowed", st)
	}
}

func TestPartitionBlackholesAndHealRequiresRedial(t *testing.T) {
	nw := New(1)
	addr := startEcho(t, nw)
	c := dialEcho(t, nw, addr)
	// Healthy first.
	if _, err := c.Write([]byte("ok")); err != nil {
		t.Fatalf("write: %v", err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c, make([]byte, 2)); err != nil {
		t.Fatalf("read: %v", err)
	}

	nw.Partition(addr)
	// Writes appear to succeed but vanish.
	if _, err := c.Write([]byte("into the void")); err != nil {
		t.Fatalf("partitioned write should report success, got %v", err)
	}
	// Reads hang until the deadline, then time out — no error reveals the
	// partition.
	c.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	_, err := c.Read(make([]byte, 1))
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("read err = %v, want timeout", err)
	}
	// New dials time out too.
	if _, err := nw.Dialer(nil)(addr); err == nil {
		t.Fatal("dial to partitioned addr succeeded")
	} else if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("dial err = %v, want timeout", err)
	}

	nw.Heal(addr)
	// The old conn stays dead...
	c.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("blackholed conn came back after heal")
	}
	// ...but a fresh dial works end to end.
	c2 := dialEcho(t, nw, addr)
	if _, err := c2.Write([]byte("back")); err != nil {
		t.Fatalf("post-heal write: %v", err)
	}
	c2.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c2, make([]byte, 4)); err != nil {
		t.Fatalf("post-heal read: %v", err)
	}
}

func TestPartitionUnblocksParkedReader(t *testing.T) {
	nw := New(1)
	addr := startEcho(t, nw)
	c := dialEcho(t, nw, addr)
	c.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	done := make(chan error, 1)
	go func() {
		_, err := c.Read(make([]byte, 1))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // park the reader inside inner.Read
	nw.Partition(addr)
	select {
	case err := <-done:
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Timeout() {
			t.Fatalf("read err = %v, want timeout", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reader never returned after partition + deadline")
	}
}

func TestSeverAllKillsWithError(t *testing.T) {
	nw := New(1)
	addr := startEcho(t, nw)
	c := dialEcho(t, nw, addr)
	nw.SeverAll(addr)
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrSevered) {
		t.Fatalf("write err = %v, want ErrSevered", err)
	}
	// Unlike Partition, dialing still works: the node itself is up.
	c2 := dialEcho(t, nw, addr)
	if _, err := c2.Write([]byte("ok")); err != nil {
		t.Fatalf("post-sever dial write: %v", err)
	}
}

func TestSeededRatesAreDeterministic(t *testing.T) {
	run := func(seed int64) []string {
		nw := New(seed)
		nw.SetRate(Drop, 0.2)
		nw.SetRate(Duplicate, 0.2)
		var kinds []string
		for i := 0; i < 200; i++ {
			if f, ok := nw.nextFault(); ok {
				kinds = append(kinds, f.Kind.String())
			} else {
				kinds = append(kinds, "")
			}
		}
		return kinds
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d: %q vs %q", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

func TestPipeCarriesBytes(t *testing.T) {
	nw := New(1)
	a, b := nw.Pipe("left", "right")
	defer a.Close()
	defer b.Close()
	go func() { a.Write([]byte("ping")) }()
	got := make([]byte, 4)
	b.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(got) != "ping" {
		t.Fatalf("got %q", got)
	}
	if a.Peer() != "left" || b.Peer() != "right" {
		t.Fatalf("peer labels: %q %q", a.Peer(), b.Peer())
	}
}

func TestScriptedDelayHoldsChunk(t *testing.T) {
	nw := New(1)
	addr := startEcho(t, nw)
	c := dialEcho(t, nw, addr)
	nw.ScriptAt(1, Fault{Kind: Delay, Delay: 60 * time.Millisecond})
	start := time.Now()
	if _, err := c.Write([]byte("slow")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if took := time.Since(start); took < 50*time.Millisecond {
		t.Fatalf("delayed write returned in %v, want >=50ms", took)
	}
	got := make([]byte, 4)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatalf("read: %v", err)
	}
}
