package netfault

import (
	"errors"
	"net"
	"sync"
	"time"
)

// ErrSevered is the error a severed connection's reads and writes return
// (wrapped in *net.OpError): the injected equivalent of an RST.
var ErrSevered = errors.New("netfault: connection severed")

// Conn wraps a real connection (TCP or net.Pipe) and applies the Network's
// faults to its writes. The peer label ties it to an address for
// Partition/SeverAll targeting: outbound conns are labelled with the
// dialled address, accepted conns with their listener's address, so
// partitioning one address silences a node's traffic in both directions.
type Conn struct {
	inner net.Conn
	nw    *Network
	peer  string

	mu           sync.Mutex
	severed      bool
	blackholed   bool
	halfOpen     bool
	closed       bool
	closeErr     error // inner Close failure from sever, surfaced by Close
	readDeadline time.Time
	wake         chan struct{} // replaced+closed to broadcast state changes
}

// Wrap puts inner under the Network's faults, labelled with peer.
func (n *Network) Wrap(inner net.Conn, peer string) *Conn {
	c := &Conn{inner: inner, nw: n, peer: peer, wake: make(chan struct{})}
	n.register(c)
	return c
}

// Pipe returns both ends of an in-memory connection under the Network's
// faults, labelled peerA/peerB — the deterministic sweep's transport: no
// kernel socket buffering, so the op counter maps 1:1 onto protocol steps.
func (n *Network) Pipe(peerA, peerB string) (*Conn, *Conn) {
	a, b := net.Pipe()
	return n.Wrap(a, peerA), n.Wrap(b, peerB)
}

// Peer returns the address label this conn is targeted by.
func (c *Conn) Peer() string { return c.peer }

// sever hard-kills the connection: both directions fail with ErrSevered
// and the peer observes the close (EOF/RST) through the inner conn.
func (c *Conn) sever() {
	c.mu.Lock()
	if c.severed || c.closed {
		c.mu.Unlock()
		return
	}
	c.severed = true
	c.broadcastLocked()
	c.mu.Unlock()
	c.nw.noteSever()
	if err := c.inner.Close(); err != nil {
		c.mu.Lock()
		c.closeErr = err
		c.mu.Unlock()
	}
}

// blackhole silently kills the connection: writes keep reporting success
// but deliver nothing, reads hang until their deadline. The inner conn is
// NOT closed — the peer must discover the loss by liveness timeout, never
// by an error.
func (c *Conn) blackhole() {
	c.mu.Lock()
	if c.blackholed || c.severed || c.closed {
		c.mu.Unlock()
		return
	}
	c.blackholed = true
	c.broadcastLocked()
	c.mu.Unlock()
	// Kick any goroutine blocked inside inner.Read/Write so it re-checks
	// state; an immediate-past deadline surfaces as a timeout error which
	// the Read/Write paths below translate into blackhole behaviour.
	_ = c.inner.SetDeadline(time.Unix(1, 0))
}

// broadcastLocked wakes every goroutine parked in blockRead.
func (c *Conn) broadcastLocked() {
	close(c.wake)
	c.wake = make(chan struct{})
}

func (c *Conn) state() (severed, blackholed, halfOpen, closed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.severed, c.blackholed, c.halfOpen, c.closed
}

// Read implements net.Conn.
func (c *Conn) Read(b []byte) (int, error) {
	for {
		severed, blackholed, _, closed := c.state()
		if severed {
			return 0, &net.OpError{Op: "read", Net: "tcp", Err: ErrSevered}
		}
		if closed {
			return 0, net.ErrClosed
		}
		if blackholed {
			return c.blockRead()
		}
		n, err := c.inner.Read(b)
		if err != nil {
			// The error may be the blackhole kick, not a real failure:
			// re-check state before surfacing it.
			if _, bh, _, _ := c.state(); bh {
				if n > 0 {
					// Bytes already in the local buffer arrived before the
					// partition; deliver them.
					return n, nil
				}
				continue
			}
			if sv, _, _, _ := c.state(); sv {
				return n, &net.OpError{Op: "read", Net: "tcp", Err: ErrSevered}
			}
		}
		return n, err
	}
}

// blockRead models a partitioned read: hang until the caller's read
// deadline, then report a timeout — never an error that would reveal the
// partition.
func (c *Conn) blockRead() (int, error) {
	for {
		c.mu.Lock()
		deadline := c.readDeadline
		severed, closed := c.severed, c.closed
		wake := c.wake
		c.mu.Unlock()
		if severed {
			return 0, &net.OpError{Op: "read", Net: "tcp", Err: ErrSevered}
		}
		if closed {
			return 0, net.ErrClosed
		}
		if deadline.IsZero() {
			<-wake
			continue
		}
		wait := time.Until(deadline)
		if wait <= 0 {
			return 0, &net.OpError{Op: "read", Net: "tcp", Err: timeoutError{}}
		}
		t := time.NewTimer(wait)
		select {
		case <-wake:
			t.Stop()
		case <-t.C:
		}
	}
}

// Write implements net.Conn, applying the Network's fault schedule.
func (c *Conn) Write(b []byte) (int, error) {
	severed, blackholed, halfOpen, closed := c.state()
	if severed {
		return 0, &net.OpError{Op: "write", Net: "tcp", Err: ErrSevered}
	}
	if closed {
		return 0, net.ErrClosed
	}
	if blackholed || halfOpen {
		c.nw.noteSwallow()
		return len(b), nil
	}
	f, ok := c.nw.nextFault()
	if !ok {
		return c.innerWrite(b)
	}
	switch f.Kind {
	case Drop:
		c.sever()
		return 0, &net.OpError{Op: "write", Net: "tcp", Err: ErrSevered}
	case Truncate:
		if len(b) > 1 {
			_, _ = c.innerWrite(b[:len(b)/2])
		}
		c.sever()
		return 0, &net.OpError{Op: "write", Net: "tcp", Err: ErrSevered}
	case Duplicate:
		if n, err := c.innerWrite(b); err != nil {
			return n, err
		}
		if _, err := c.innerWrite(b); err != nil {
			return len(b), err
		}
		return len(b), nil
	case Corrupt:
		dup := make([]byte, len(b))
		copy(dup, b)
		if len(dup) > 0 {
			dup[c.nw.corruptByte(len(dup))] ^= 0xff
		}
		return c.innerWrite(dup)
	case Delay:
		time.Sleep(f.Delay)
		return c.innerWrite(b)
	case HalfOpen:
		c.mu.Lock()
		c.halfOpen = true
		c.mu.Unlock()
		c.nw.noteSwallow()
		return len(b), nil
	}
	return c.innerWrite(b)
}

// innerWrite forwards to the wrapped conn, translating the blackhole kick
// (see blackhole) into a swallowed-success write.
func (c *Conn) innerWrite(b []byte) (int, error) {
	n, err := c.inner.Write(b)
	if err != nil {
		if _, bh, _, _ := c.state(); bh {
			c.nw.noteSwallow()
			return len(b), nil
		}
		if sv, _, _, _ := c.state(); sv {
			return n, &net.OpError{Op: "write", Net: "tcp", Err: ErrSevered}
		}
	}
	return n, err
}

// Close implements net.Conn.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	severed, closeErr := c.severed, c.closeErr
	c.broadcastLocked()
	c.mu.Unlock()
	c.nw.unregister(c)
	if severed {
		// sever already closed the inner conn; report its outcome instead
		// of a double-close error.
		return closeErr
	}
	return c.inner.Close()
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error {
	if err := c.SetReadDeadline(t); err != nil {
		return err
	}
	return c.SetWriteDeadline(t)
}

// SetReadDeadline implements net.Conn. The deadline is tracked locally so
// blackholed reads can honour it, and forwarded to the inner conn for
// normal reads.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	blackholed := c.blackholed
	c.broadcastLocked()
	c.mu.Unlock()
	if blackholed {
		return nil
	}
	return c.inner.SetReadDeadline(t)
}

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	if _, bh, _, _ := c.state(); bh {
		return nil
	}
	return c.inner.SetWriteDeadline(t)
}
