// Package netfault is a deterministic fault-injecting transport seam: it is
// to connections what internal/vfs.FaultFS is to files. A Network wraps
// net.Conn, net.Listener, and dial functions so every replication and
// serving test can run under injected network chaos — severed connections,
// truncated or duplicated or corrupted chunks, delayed delivery, half-open
// connections that silently blackhole one direction, and address-level
// partitions that take a whole node off the network.
//
// Faults are injected on the WRITE side of a connection, where the network
// first touches the bytes. Every Write across the network charges one
// operation against a global counter; a fault can be scripted at an exact
// operation index (the failover sweep enumerates every index, exactly like
// the FaultFS crash sweeps enumerate mutating-operation indexes), or drawn
// from seeded per-kind probabilities (the chaos smoke tests). Both modes
// are deterministic given the seed and the write sequence.
//
// The fault model is TCP-shaped: a healthy connection delivers an ordered,
// uncorrupted byte stream, so injected corruption/duplication/truncation
// models middlebox or NIC damage that a robust protocol must DETECT and
// convert into a reconnect — never into applied garbage. Partitions model
// routing loss: established connections to a partitioned address silently
// blackhole (reads hang until the deadline, writes appear to succeed and
// vanish, exactly how a dropped route feels to an endpoint) and new dials
// time out. Because swallowed bytes never come back, a partitioned
// connection stays dead after Heal — the endpoint must redial, which is the
// posture real clients are in after a partition outlives the TCP
// retransmit window.
package netfault

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// Kind enumerates the injectable fault kinds.
type Kind int

const (
	// Drop severs the connection (both directions) with an error, like an
	// RST mid-stream.
	Drop Kind = iota
	// Truncate delivers a prefix of the chunk, then severs the connection:
	// the peer sees a torn frame followed by EOF.
	Truncate
	// Duplicate delivers the chunk twice, back to back.
	Duplicate
	// Corrupt flips one byte of the chunk before delivery.
	Corrupt
	// Delay holds the chunk for the fault's Delay duration before
	// delivering it.
	Delay
	// HalfOpen turns the connection half-open from this chunk on: writes
	// from this side report success but deliver nothing, and the peer's
	// reads hang — the classic silently-dead connection a crashed NAT
	// entry leaves behind. Liveness timeouts, not errors, must catch it.
	HalfOpen
	numKinds = iota
)

// String names the kind for stats and sweep tags.
func (k Kind) String() string {
	switch k {
	case Drop:
		return "drop"
	case Truncate:
		return "truncate"
	case Duplicate:
		return "duplicate"
	case Corrupt:
		return "corrupt"
	case Delay:
		return "delay"
	case HalfOpen:
		return "halfopen"
	}
	return "unknown"
}

// Fault is one injected fault: a kind plus its parameters.
type Fault struct {
	Kind Kind
	// Delay is the hold duration for Delay faults.
	Delay time.Duration
}

// Stats counts injected faults by kind, plus the operations observed.
type Stats struct {
	Ops       int64
	Injected  map[string]uint64
	Severed   uint64
	Swallowed uint64
}

// Network is the shared fault plane: all conns, listeners, and dialers
// wrapped by the same Network draw from one operation counter, one fault
// schedule, and one partition set.
type Network struct {
	mu          sync.Mutex
	rng         *rand.Rand
	ops         int64
	script      map[int64]Fault
	rates       [numKinds]float64
	delay       time.Duration // delay used by rate-drawn Delay faults
	partitioned map[string]bool
	conns       map[*Conn]struct{}

	injected  [numKinds]uint64
	severed   uint64
	swallowed uint64
}

// New returns a Network seeded for deterministic random-mode draws. The
// same seed and write sequence reproduce the same faults.
func New(seed int64) *Network {
	return &Network{
		rng:         rand.New(rand.NewSource(seed)),
		script:      map[int64]Fault{},
		partitioned: map[string]bool{},
		conns:       map[*Conn]struct{}{},
	}
}

// ScriptAt arms fault f at the op-th network write (1-based, counted across
// every connection of this Network). Scripted faults win over rate draws.
func (n *Network) ScriptAt(op int64, f Fault) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.script[op] = f
}

// SetRate sets the per-write probability of kind (0 disables). Rate-drawn
// Delay faults hold chunks for delay (set once via SetDelay).
func (n *Network) SetRate(kind Kind, p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.rates[kind] = p
}

// SetDelay sets the hold duration rate-drawn Delay faults use.
func (n *Network) SetDelay(d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.delay = d
}

// Ops returns the number of network writes observed so far; a fault-free
// run of a workload measures the sweep range for ScriptAt.
func (n *Network) Ops() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ops
}

// Stats returns a snapshot of the injection counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	m := make(map[string]uint64, numKinds)
	for k := Kind(0); k < numKinds; k++ {
		if n.injected[k] > 0 {
			m[k.String()] = n.injected[k]
		}
	}
	return Stats{Ops: n.ops, Injected: m, Severed: n.severed, Swallowed: n.swallowed}
}

// Partition takes addr off the network: established connections to it
// blackhole silently (and stay dead after Heal — see the package comment)
// and new dials to it time out.
func (n *Network) Partition(addr string) {
	n.mu.Lock()
	n.partitioned[addr] = true
	var hit []*Conn
	for c := range n.conns {
		if c.peer == addr {
			hit = append(hit, c)
		}
	}
	n.mu.Unlock()
	for _, c := range hit {
		c.blackhole()
	}
}

// Heal re-admits addr: new dials succeed again. Connections blackholed by
// the partition stay dead; endpoints redial.
func (n *Network) Heal(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.partitioned, addr)
}

// SeverAll hard-kills every connection to addr with an error, like the
// peer's host going down with an RST in flight. Unlike Partition, dials are
// still admitted (and will fail at the real listener, or be accepted if the
// node is actually alive).
func (n *Network) SeverAll(addr string) {
	n.mu.Lock()
	var hit []*Conn
	for c := range n.conns {
		if c.peer == addr {
			hit = append(hit, c)
		}
	}
	n.mu.Unlock()
	for _, c := range hit {
		c.sever()
	}
}

func (n *Network) isPartitioned(addr string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.partitioned[addr]
}

// nextFault charges one write op and returns the fault to inject, if any.
func (n *Network) nextFault() (Fault, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.ops++
	if f, ok := n.script[n.ops]; ok {
		n.injected[f.Kind]++
		return f, true
	}
	for k := Kind(0); k < numKinds; k++ {
		if n.rates[k] > 0 && n.rng.Float64() < n.rates[k] {
			n.injected[k]++
			f := Fault{Kind: k}
			if k == Delay {
				f.Delay = n.delay
			}
			return f, true
		}
	}
	return Fault{}, false
}

// corruptByte picks the byte index to flip, deterministically from the rng.
func (n *Network) corruptByte(chunkLen int) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	if chunkLen <= 0 {
		return 0
	}
	return n.rng.Intn(chunkLen)
}

func (n *Network) register(c *Conn) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.conns[c] = struct{}{}
}

func (n *Network) unregister(c *Conn) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.conns, c)
}

func (n *Network) noteSever() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.severed++
}

func (n *Network) noteSwallow() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.swallowed++
}

// Dialer wraps base (nil means net.Dial "tcp") so every dialed connection
// runs under this Network's faults; partitioned addresses time out
// immediately instead of after a real TCP timeout, which keeps sweeps fast
// and deterministic.
func (n *Network) Dialer(base func(addr string) (net.Conn, error)) func(addr string) (net.Conn, error) {
	if base == nil {
		base = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	return func(addr string) (net.Conn, error) {
		if n.isPartitioned(addr) {
			return nil, &net.OpError{Op: "dial", Net: "tcp", Err: timeoutError{}}
		}
		inner, err := base(addr)
		if err != nil {
			return nil, err
		}
		return n.Wrap(inner, addr), nil
	}
}

// Listen opens a TCP listener on addr and wraps it so accepted connections
// run under this Network's faults, labelled with the listener's address —
// Partition(bound) therefore kills a server's inbound connections too, not
// just its clients' outbound ones.
func (n *Network) Listen(addr string) (net.Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return n.WrapListener(l), nil
}

// WrapListener wraps an existing listener (see Listen).
func (n *Network) WrapListener(l net.Listener) net.Listener {
	return &listener{Listener: l, nw: n, addr: l.Addr().String()}
}

type listener struct {
	net.Listener
	nw   *Network
	addr string
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.nw.Wrap(c, l.addr), nil
}

// timeoutError is the net.Error partitioned dials and blackholed reads
// return: a timeout, so retry classifiers treat it like the real thing.
type timeoutError struct{}

func (timeoutError) Error() string   { return "netfault: i/o timeout (partitioned)" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }
