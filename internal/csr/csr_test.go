package csr

import (
	"testing"

	"aion/internal/memgraph"
	"aion/internal/model"
)

func buildGraph(t *testing.T, n int, edges [][2]int) *memgraph.Graph {
	t.Helper()
	g := memgraph.New()
	ts := model.Timestamp(1)
	for i := 0; i < n; i++ {
		if err := g.Apply(model.AddNode(ts, model.NodeID(i), nil, nil)); err != nil {
			t.Fatal(err)
		}
		ts++
	}
	for i, e := range edges {
		if err := g.Apply(model.AddRel(ts, model.RelID(i), model.NodeID(e[0]), model.NodeID(e[1]), "R", nil)); err != nil {
			t.Fatal(err)
		}
		ts++
	}
	return g
}

func TestEmptyGraph(t *testing.T) {
	c := Build(memgraph.New(), Options{})
	if c.N != 0 || c.EdgeCount() != 0 {
		t.Errorf("empty projection: N=%d E=%d", c.N, c.EdgeCount())
	}
}

func TestOffsetsAreMonotone(t *testing.T) {
	g := buildGraph(t, 10, [][2]int{{0, 1}, {0, 2}, {3, 4}, {9, 0}, {9, 1}, {9, 2}})
	c := Build(g, Options{})
	for i := 0; i < c.N; i++ {
		if c.OutOffsets[i] > c.OutOffsets[i+1] || c.InOffsets[i] > c.InOffsets[i+1] {
			t.Fatalf("offsets not monotone at %d", i)
		}
	}
	if c.OutOffsets[c.N] != int64(len(c.OutTargets)) {
		t.Error("final offset must equal target count")
	}
}

func TestAdjacencyMirrorsGraph(t *testing.T) {
	edges := [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 1}}
	g := buildGraph(t, 3, edges)
	c := Build(g, Options{})
	// Every graph edge appears exactly once in the CSR, both directions.
	outCount := map[[2]int32]int{}
	for i := int32(0); i < int32(c.N); i++ {
		for _, tgt := range c.Out(i) {
			outCount[[2]int32{i, tgt}]++
		}
	}
	for _, e := range edges {
		s := c.Dense.ToDense[model.NodeID(e[0])]
		x := c.Dense.ToDense[model.NodeID(e[1])]
		if outCount[[2]int32{s, x}] != 1 {
			t.Errorf("edge %v missing or duplicated", e)
		}
	}
	// In-adjacency consistency: sum of in-degrees == edges.
	var inTotal int64
	for i := int32(0); i < int32(c.N); i++ {
		inTotal += int64(len(c.In(i)))
	}
	if inTotal != int64(len(edges)) {
		t.Errorf("in-degree total = %d", inTotal)
	}
}

func TestWeightsDefaultToOne(t *testing.T) {
	g := buildGraph(t, 2, [][2]int{{0, 1}})
	c := Build(g, Options{WeightProp: "missing"})
	if c.Weights[0] != 1 {
		t.Errorf("default weight = %v", c.Weights[0])
	}
}

func TestIntWeightProjected(t *testing.T) {
	g := buildGraph(t, 2, [][2]int{{0, 1}})
	g.Apply(model.UpdateRel(99, 0, 0, 1, model.Properties{"w": model.IntValue(7)}, nil))
	c := Build(g, Options{WeightProp: "w"})
	if c.Weights[0] != 7 {
		t.Errorf("int weight = %v", c.Weights[0])
	}
}
