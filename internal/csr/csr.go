// Package csr builds static Compressed Sparse Row projections of a graph
// snapshot, the representation Neo4j's GDS library uses for parallel
// analytics (Sec 2.1, 5.1). Node ids are translated to the dense domain so
// algorithms can use flat vectors.
package csr

import (
	"runtime"
	"sync"

	"aion/internal/memgraph"
	"aion/internal/model"
)

// Graph is an immutable CSR projection over dense node ids.
type Graph struct {
	N          int
	OutOffsets []int64
	OutTargets []int32
	InOffsets  []int64
	InTargets  []int32
	// Weights[i] aligns with OutTargets[i]; nil when no weight property was
	// projected.
	Weights []float64
	Dense   *memgraph.DenseMap
}

// Options configures a projection.
type Options struct {
	// WeightProp, when set, projects this float/int relationship property
	// as edge weights (missing values default to 1).
	WeightProp string
	// Parallel enables multi-goroutine construction (on-the-fly CSR
	// creation is parallelized when snapshots are retrieved, Sec 5.2).
	Parallel bool
}

// Build projects a snapshot into CSR form.
func Build(g *memgraph.Graph, opts Options) *Graph {
	dm := g.BuildDenseMap()
	n := dm.Len()
	c := &Graph{N: n, Dense: dm}
	c.OutOffsets = make([]int64, n+1)
	c.InOffsets = make([]int64, n+1)

	// Pass 1: degree counting.
	for i, sid := range dm.ToSparse {
		c.OutOffsets[i+1] = int64(len(g.Out(sid)))
		c.InOffsets[i+1] = int64(len(g.In(sid)))
	}
	for i := 0; i < n; i++ {
		c.OutOffsets[i+1] += c.OutOffsets[i]
		c.InOffsets[i+1] += c.InOffsets[i]
	}
	c.OutTargets = make([]int32, c.OutOffsets[n])
	c.InTargets = make([]int32, c.InOffsets[n])
	if opts.WeightProp != "" {
		c.Weights = make([]float64, c.OutOffsets[n])
	}

	// Pass 2: fill adjacency, optionally in parallel over node ranges.
	fill := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sid := dm.ToSparse[i]
			oo := c.OutOffsets[i]
			for _, rid := range g.Out(sid) {
				r := g.Rel(rid)
				c.OutTargets[oo] = dm.ToDense[r.Tgt]
				if c.Weights != nil {
					c.Weights[oo] = weightOf(r, opts.WeightProp)
				}
				oo++
			}
			io := c.InOffsets[i]
			for _, rid := range g.In(sid) {
				r := g.Rel(rid)
				c.InTargets[io] = dm.ToDense[r.Src]
				io++
			}
		}
	}
	if !opts.Parallel || n < 1024 {
		fill(0, n)
		return c
	}
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fill(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return c
}

func weightOf(r *model.Rel, prop string) float64 {
	if v, ok := r.Props[prop]; ok {
		return v.Float()
	}
	return 1
}

// OutDegree returns the out-degree of dense node i.
func (c *Graph) OutDegree(i int32) int64 { return c.OutOffsets[i+1] - c.OutOffsets[i] }

// Out returns the dense out-neighbours of node i (not to be mutated).
func (c *Graph) Out(i int32) []int32 { return c.OutTargets[c.OutOffsets[i]:c.OutOffsets[i+1]] }

// In returns the dense in-neighbours of node i (not to be mutated).
func (c *Graph) In(i int32) []int32 { return c.InTargets[c.InOffsets[i]:c.InOffsets[i+1]] }

// EdgeCount returns the number of projected (directed) edges.
func (c *Graph) EdgeCount() int64 { return int64(len(c.OutTargets)) }
