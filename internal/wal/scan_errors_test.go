package wal

// Scan/ScanBatch error paths and the SyncedSize durability watermark that
// replication ships against: misaligned scan starts must fail loudly (a
// replica resuming from a bogus offset is divergence, not data), zero-length
// payloads must round-trip (commit records can carry empty frames), and
// SyncedSize must track exactly the bytes a crash is guaranteed to keep.

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestScanFromMidRecordFails(t *testing.T) {
	l := openLog(t)
	var offs []int64
	for i := 0; i < 8; i++ {
		off, err := l.Append([]byte{byte(i), byte(i), byte(i), byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		offs = append(offs, off)
	}
	// Start inside record 1's header and inside its payload: both point at
	// garbage headers and must surface ErrCorrupt, not silent records.
	for _, from := range []int64{offs[1] + 2, offs[1] + recordHeaderSize + 1} {
		if _, err := l.Scan(from, func(int64, []byte) bool { return true }); !errors.Is(err, ErrCorrupt) {
			t.Errorf("Scan(%d) = %v, want ErrCorrupt", from, err)
		}
		if _, err := l.ScanBatch(from, 0, func([]Frame) bool { return true }); !errors.Is(err, ErrCorrupt) {
			t.Errorf("ScanBatch(%d) = %v, want ErrCorrupt", from, err)
		}
	}
}

func TestZeroLengthPayloads(t *testing.T) {
	l := openLog(t)
	if _, err := l.Append(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("mid")); err != nil {
		t.Fatal(err)
	}
	offs, err := l.AppendBatch([][]byte{{}, []byte("x"), {}})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"", "mid", "", "x", ""}
	var got []string
	if _, err := l.Scan(0, func(off int64, p []byte) bool {
		got = append(got, string(p))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scanned %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	var batched []string
	if _, err := l.ScanBatch(0, 0, func(fs []Frame) bool {
		for _, f := range fs {
			batched = append(batched, string(f.Payload))
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(batched) != len(want) {
		t.Fatalf("batch-scanned %d records, want %d", len(batched), len(want))
	}
	// An empty record reads back and its successor stays aligned.
	if p, err := l.ReadAt(offs[0]); err != nil || len(p) != 0 {
		t.Fatalf("ReadAt(empty) = %q, %v", p, err)
	}
	if p, err := l.ReadAt(offs[1]); err != nil || string(p) != "x" {
		t.Fatalf("ReadAt after empty = %q, %v", p, err)
	}
}

func TestSyncedSizeTracksDurability(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.SyncedSize(); got != 0 {
		t.Fatalf("fresh log SyncedSize = %d", got)
	}
	if _, err := l.Append([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if got := l.SyncedSize(); got != 0 {
		t.Fatalf("unsynced append raised SyncedSize to %d", got)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := l.SyncedSize(); got != l.Size() {
		t.Fatalf("after Sync: SyncedSize %d, Size %d", got, l.Size())
	}
	if _, err := l.AppendBatch([][]byte{[]byte("two"), []byte("three")}); err != nil {
		t.Fatal(err)
	}
	if got := l.SyncedSize(); got >= l.Size() {
		t.Fatalf("unsynced batch: SyncedSize %d not below Size %d", got, l.Size())
	}
	if err := l.Close(); err != nil { // Close syncs
		t.Fatal(err)
	}

	// Reopen: everything on disk is durable again.
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	full := l2.Size()
	if got := l2.SyncedSize(); got != full {
		t.Fatalf("reopened log: SyncedSize %d, Size %d", got, full)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	// A torn AppendBatch tail: repair trims it, RepairedBytes reports it,
	// and SyncedSize equals the repaired (whole-record) size.
	if err := os.Truncate(path, full-2); err != nil {
		t.Fatal(err)
	}
	l3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if l3.RepairedBytes() == 0 {
		t.Fatal("expected torn-tail repair")
	}
	if got := l3.SyncedSize(); got != l3.Size() {
		t.Fatalf("repaired log: SyncedSize %d, Size %d", got, l3.Size())
	}
	var seen []string
	if _, err := l3.Scan(0, func(off int64, p []byte) bool {
		seen = append(seen, string(p))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[0] != "one" || seen[1] != "two" {
		t.Fatalf("recovered %v, want [one two]", seen)
	}
}
