package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"aion/internal/vfs"
)

func openLog(t *testing.T) *Log {
	t.Helper()
	l, err := Open(filepath.Join(t.TempDir(), "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func TestAppendReadRoundTrip(t *testing.T) {
	l := openLog(t)
	offs := make([]int64, 0, 100)
	for i := 0; i < 100; i++ {
		off, err := l.Append([]byte(fmt.Sprintf("record-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		offs = append(offs, off)
	}
	for i, off := range offs {
		got, err := l.ReadAt(off)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != fmt.Sprintf("record-%d", i) {
			t.Errorf("record %d = %q", i, got)
		}
	}
}

func TestScanOrderAndEarlyStop(t *testing.T) {
	l := openLog(t)
	for i := 0; i < 50; i++ {
		l.Append([]byte{byte(i)})
	}
	i := 0
	end, err := l.Scan(0, func(off int64, p []byte) bool {
		if p[0] != byte(i) {
			t.Fatalf("out of order at %d: %d", i, p[0])
		}
		i++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != 50 || end != l.Size() {
		t.Errorf("visited %d, end %d, size %d", i, end, l.Size())
	}
	// Early stop returns the next offset for resumption.
	count := 0
	mid, err := l.Scan(0, func(off int64, p []byte) bool {
		count++
		return count < 10
	})
	if err != nil {
		t.Fatal(err)
	}
	rest := 0
	if _, err := l.Scan(mid, func(off int64, p []byte) bool { rest++; return true }); err != nil {
		t.Fatal(err)
	}
	if count+rest != 50 {
		t.Errorf("resumed scan covered %d records", count+rest)
	}
}

func TestScanFromMidOffset(t *testing.T) {
	l := openLog(t)
	var offs []int64
	for i := 0; i < 20; i++ {
		off, _ := l.Append([]byte{byte(i)})
		offs = append(offs, off)
	}
	first := -1
	l.Scan(offs[7], func(off int64, p []byte) bool {
		if first < 0 {
			first = int(p[0])
		}
		return true
	})
	if first != 7 {
		t.Errorf("scan from offset started at record %d", first)
	}
}

func TestReadErrors(t *testing.T) {
	l := openLog(t)
	l.Append([]byte("x"))
	if _, err := l.ReadAt(-1); err == nil {
		t.Error("negative offset must fail")
	}
	if _, err := l.ReadAt(l.Size()); err == nil {
		t.Error("past-end offset must fail")
	}
	if _, err := l.ReadAt(3); err == nil {
		t.Error("misaligned offset must fail checksum or bounds")
	}
}

func TestCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	off, _ := l.Append([]byte("important"))
	l.Close()

	// Flip a payload byte on disk.
	b, _ := os.ReadFile(path)
	b[len(b)-1] ^= 0xFF
	os.WriteFile(path, b, 0o644)

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if _, err := l2.ReadAt(off); err == nil {
		t.Error("corrupted record must fail checksum")
	}
}

func TestReopenPreservesSize(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, _ := Open(path)
	l.Append([]byte("one"))
	off2, _ := l.Append([]byte("two"))
	l.Close()

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got, err := l2.ReadAt(off2)
	if err != nil || string(got) != "two" {
		t.Errorf("reopened read: %q %v", got, err)
	}
	// New appends continue after existing data.
	off3, _ := l2.Append([]byte("three"))
	if off3 <= off2 {
		t.Error("append after reopen must extend the log")
	}
}

func TestConcurrentReadersDuringAppend(t *testing.T) {
	l := openLog(t)
	for i := 0; i < 100; i++ {
		l.Append([]byte{byte(i)})
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				n := 0
				l.Scan(0, func(off int64, p []byte) bool { n++; return true })
				if n < 100 {
					t.Errorf("reader saw %d records", n)
					return
				}
			}
		}()
	}
	for i := 100; i < 200; i++ {
		l.Append([]byte{byte(i)})
	}
	wg.Wait()
}

// TestScanBatchMatchesScan verifies the readahead batch scan returns the
// exact record sequence of the record-at-a-time Scan, including with a
// readahead small enough to force records across chunk boundaries and a
// record bigger than the readahead buffer (forcing growth).
func TestScanBatchMatchesScan(t *testing.T) {
	l := openLog(t)
	for i := 0; i < 200; i++ {
		payload := make([]byte, 1+i%37)
		for j := range payload {
			payload[j] = byte(i)
		}
		if i == 150 {
			payload = make([]byte, 300) // larger than the tiny readahead below
		}
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	type rec struct {
		off int64
		n   int
		b0  byte
	}
	var want []rec
	l.Scan(0, func(off int64, p []byte) bool {
		want = append(want, rec{off, len(p), p[0]})
		return true
	})
	for _, readahead := range []int{0, 64, 1 << 20} {
		var got []rec
		end, err := l.ScanBatch(0, readahead, func(frames []Frame) bool {
			for _, fr := range frames {
				got = append(got, rec{fr.Off, len(fr.Payload), fr.Payload[0]})
			}
			return true
		})
		if err != nil {
			t.Fatalf("readahead %d: %v", readahead, err)
		}
		if end != l.Size() {
			t.Errorf("readahead %d: end %d, size %d", readahead, end, l.Size())
		}
		if len(got) != len(want) {
			t.Fatalf("readahead %d: %d records, want %d", readahead, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("readahead %d: record %d = %+v, want %+v", readahead, i, got[i], want[i])
			}
		}
	}
}

func TestScanBatchEarlyStop(t *testing.T) {
	l := openLog(t)
	for i := 0; i < 50; i++ {
		l.Append([]byte{byte(i)})
	}
	seen := 0
	mid, err := l.ScanBatch(0, 4*recordHeaderSize, func(frames []Frame) bool {
		seen += len(frames)
		return seen < 10
	})
	if err != nil {
		t.Fatal(err)
	}
	rest := 0
	if _, err := l.ScanBatch(mid, 0, func(frames []Frame) bool { rest += len(frames); return true }); err != nil {
		t.Fatal(err)
	}
	if seen+rest != 50 {
		t.Errorf("resumed batch scan covered %d records", seen+rest)
	}
}

// corruptOnDisk mutates the log's backing file through a second OS handle
// while the Log stays open, simulating bit rot under a live reader (Open
// itself would repair the tail away).
func corruptOnDisk(t *testing.T, path string, fn func(b []byte) []byte) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, fn(b), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestScanBatchCorruption flips a byte mid-log and verifies the batch scan
// surfaces a checksum error while still delivering the records before it.
func TestScanBatchCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, _ := Open(path)
	defer l.Close()
	var offs []int64
	for i := 0; i < 20; i++ {
		off, _ := l.Append([]byte{byte(i), byte(i), byte(i)})
		offs = append(offs, off)
	}
	corruptOnDisk(t, path, func(b []byte) []byte {
		b[offs[10]+recordHeaderSize] ^= 0xFF // corrupt record 10's payload
		return b
	})

	n := 0
	_, err := l.ScanBatch(0, 0, func(frames []Frame) bool { n += len(frames); return true })
	if err == nil {
		t.Fatal("corrupted record must fail the batch scan")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("corruption must surface ErrCorrupt, got %v", err)
	}
	if n != 10 {
		t.Errorf("delivered %d records before the corruption, want 10", n)
	}
	// A scan that stops before the corruption must not see the error.
	n = 0
	_, err = l.ScanBatch(0, 0, func(frames []Frame) bool { n += len(frames); return false })
	if err != nil {
		t.Errorf("scan stopping before the bad record must not error: %v", err)
	}
}

// TestScanBatchTruncated chops the log mid-record under a live Log; the
// batch scan must detect the torn tail.
func TestScanBatchTruncated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, _ := Open(path)
	defer l.Close()
	for i := 0; i < 10; i++ {
		l.Append([]byte("payload-payload"))
	}
	// Truncate on disk but leave l.size stale, the window a crash exposes.
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(l.Size() - 5); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := l.ScanBatch(0, 0, func(frames []Frame) bool { return true }); err == nil {
		t.Error("torn tail must surface an error")
	}
}

// TestOpenRepairsTornTail is the satellite regression: a half-written
// record at the tail is truncated by Open, and the log accepts appends and
// scans cleanly afterwards.
func TestOpenRepairsTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, _ := Open(path)
	for i := 0; i < 10; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("rec-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	goodSize := l.Size()
	l.Close()

	// Simulate a torn append: header + half the payload of an 11th record.
	b, _ := os.ReadFile(path)
	torn := make([]byte, recordHeaderSize+3)
	torn[0] = 6 // claims a 6-byte payload; only 3 bytes follow
	os.WriteFile(path, append(b, torn...), 0o644)

	l2, err := Open(path)
	if err != nil {
		t.Fatalf("open must repair the torn tail, got %v", err)
	}
	defer l2.Close()
	if l2.RepairedBytes() != int64(len(torn)) {
		t.Errorf("repaired %d bytes, want %d", l2.RepairedBytes(), len(torn))
	}
	if l2.Size() != goodSize {
		t.Errorf("size after repair = %d, want %d", l2.Size(), goodSize)
	}
	if _, err := l2.Append([]byte("rec-10")); err != nil {
		t.Fatal(err)
	}
	n := 0
	if _, err := l2.Scan(0, func(off int64, p []byte) bool { n++; return true }); err != nil {
		t.Fatalf("scan after repair: %v", err)
	}
	if n != 11 {
		t.Errorf("scanned %d records after repair+append, want 11", n)
	}
}

// TestOpenRepairsCorruptMidLog: a checksum-corrupt record mid-log truncates
// everything from that record on (we cannot trust anything past the first
// bad frame).
func TestOpenRepairsCorruptMidLog(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, _ := Open(path)
	var offs []int64
	for i := 0; i < 8; i++ {
		off, _ := l.Append([]byte{byte(i), byte(i)})
		offs = append(offs, off)
	}
	l.Close()
	corruptOnDisk(t, path, func(b []byte) []byte {
		b[offs[5]+recordHeaderSize] ^= 0xFF
		return b
	})
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Size() != offs[5] {
		t.Errorf("size after repair = %d, want %d", l2.Size(), offs[5])
	}
	n := 0
	l2.Scan(0, func(off int64, p []byte) bool { n++; return true })
	if n != 5 {
		t.Errorf("scanned %d records, want 5", n)
	}
}

// TestSyncFailStop: after an injected fsync failure every later Append and
// Sync returns the original error instead of silently succeeding.
func TestSyncFailStop(t *testing.T) {
	fs := vfs.NewFaultFS()
	l, err := OpenFS(fs, "d/wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("a")); err != nil {
		t.Fatal(err)
	}
	fs.SetFailAfter(fs.Ops() + 1)
	if err := l.Sync(); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("sync must surface the injected error, got %v", err)
	}
	fs.SetFailAfter(0) // disk "recovers" — the log must not
	if _, err := l.Append([]byte("b")); err == nil {
		t.Error("append after failed sync must fail-stop")
	}
	if err := l.Sync(); err == nil {
		t.Error("sync after failed sync must fail-stop")
	}
}

// TestAppendFailStop: a failed write poisons the log the same way.
func TestAppendFailStop(t *testing.T) {
	fs := vfs.NewFaultFS()
	l, err := OpenFS(fs, "d/wal.log")
	if err != nil {
		t.Fatal(err)
	}
	fs.SetFailAfter(fs.Ops() + 1)
	if _, err := l.Append([]byte("a")); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("append must surface the injected error, got %v", err)
	}
	fs.SetFailAfter(0)
	if _, err := l.Append([]byte("b")); err == nil {
		t.Error("append after failed append must fail-stop")
	}
}

func TestOpenTemp(t *testing.T) {
	l, err := OpenTemp(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if l.Path() == "" {
		t.Error("temp log must report its path")
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestAppendBatchRoundTrip(t *testing.T) {
	l := openLog(t)
	if _, err := l.Append([]byte("pre")); err != nil {
		t.Fatal(err)
	}
	payloads := make([][]byte, 40)
	for i := range payloads {
		payloads[i] = []byte(fmt.Sprintf("batched-record-%d", i))
	}
	offs, err := l.AppendBatch(payloads)
	if err != nil {
		t.Fatal(err)
	}
	if len(offs) != len(payloads) {
		t.Fatalf("got %d offsets, want %d", len(offs), len(payloads))
	}
	for i, off := range offs {
		got, err := l.ReadAt(off)
		if err != nil {
			t.Fatalf("record %d at %d: %v", i, off, err)
		}
		if string(got) != string(payloads[i]) {
			t.Errorf("record %d = %q, want %q", i, got, payloads[i])
		}
	}
	// A batch append and N singleton appends are indistinguishable to Scan.
	var seen []string
	if _, err := l.Scan(0, func(off int64, p []byte) bool {
		seen = append(seen, string(p))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(payloads)+1 || seen[0] != "pre" || seen[1] != "batched-record-0" {
		t.Fatalf("scan saw %d records (first %q)", len(seen), seen[0])
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if l.Syncs() != 1 {
		t.Fatalf("Syncs() = %d, want 1", l.Syncs())
	}
}

func TestAppendBatchEmptyAndInterleaved(t *testing.T) {
	l := openLog(t)
	if offs, err := l.AppendBatch(nil); err != nil || offs != nil {
		t.Fatalf("empty batch: %v %v", offs, err)
	}
	// Interleave singleton and batch appends; offsets must stay contiguous.
	off1, err := l.Append([]byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	offs, err := l.AppendBatch([][]byte{[]byte("bb"), []byte("ccc")})
	if err != nil {
		t.Fatal(err)
	}
	off2, err := l.Append([]byte("dddd"))
	if err != nil {
		t.Fatal(err)
	}
	want := off1 + recordHeaderSize + 1
	if offs[0] != want {
		t.Fatalf("batch record 0 at %d, want %d", offs[0], want)
	}
	if offs[1] != offs[0]+recordHeaderSize+2 {
		t.Fatalf("batch record 1 at %d", offs[1])
	}
	if off2 != offs[1]+recordHeaderSize+3 {
		t.Fatalf("post-batch append at %d", off2)
	}
}

// TestAppendBatchTornTail checks the group-commit recovery contract at the
// WAL layer: when only a prefix of a batch append reaches disk, reopening
// keeps every fully framed record of the prefix and drops the torn suffix —
// never a suffix record without its predecessors.
func TestAppendBatchTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	batch := [][]byte{[]byte("tx-one"), []byte("tx-two"), []byte("tx-three")}
	offs, err := l.AppendBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the batch mid-way through the second record.
	cut := offs[1] + recordHeaderSize + 3
	if err := os.Truncate(path, cut); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.RepairedBytes() == 0 {
		t.Fatal("expected torn-tail repair")
	}
	var seen []string
	if _, err := l2.Scan(0, func(off int64, p []byte) bool {
		seen = append(seen, string(p))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || seen[0] != "tx-one" {
		t.Fatalf("recovered %v, want only tx-one", seen)
	}
}
