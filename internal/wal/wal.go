// Package wal implements the TimeStore's update log (Sec 4.3): an
// append-only file of variable-size records ordered by monotonically
// increasing transaction timestamps, similar to a database write-ahead log
// with no retention policy. Records are addressed by byte offset so a
// B+Tree can index them by time, and can be read back individually or
// scanned as a range.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// recordHeaderSize is the per-record framing: length (4) + CRC32 (4).
const recordHeaderSize = 8

// Log is an append-only record log. Appends are serialized; reads may run
// concurrently with appends.
type Log struct {
	mu       sync.RWMutex
	f        *os.File
	size     int64 // next append offset
	path     string
	writeBuf []byte // reused append scratch, guarded by mu
}

// Open creates or opens the log at path.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: stat: %w", err)
	}
	return &Log{f: f, size: st.Size(), path: path}, nil
}

// OpenTemp opens a log on a fresh temporary file under dir (or the system
// temp dir if dir is empty); useful for benchmarks.
func OpenTemp(dir string) (*Log, error) {
	f, err := os.CreateTemp(dir, "aion-wal-*.log")
	if err != nil {
		return nil, fmt.Errorf("wal: temp: %w", err)
	}
	return &Log{f: f, path: f.Name()}, nil
}

// Append writes one record and returns its offset. Header and payload go
// out in a single write to keep the per-update ingestion cost low.
func (l *Log) Append(payload []byte) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if cap(l.writeBuf) < recordHeaderSize+len(payload) {
		l.writeBuf = make([]byte, recordHeaderSize+len(payload))
	}
	buf := l.writeBuf[:recordHeaderSize+len(payload)]
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[recordHeaderSize:], payload)
	off := l.size
	if _, err := l.f.WriteAt(buf, off); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.size = off + int64(len(buf))
	return off, nil
}

// ReadAt returns the record stored at the given offset.
func (l *Log) ReadAt(off int64) ([]byte, error) {
	payload, _, err := l.readAt(off)
	return payload, err
}

func (l *Log) readAt(off int64) (payload []byte, next int64, err error) {
	l.mu.RLock()
	size := l.size
	l.mu.RUnlock()
	if off < 0 || off+recordHeaderSize > size {
		return nil, 0, fmt.Errorf("wal: offset %d out of range (size %d)", off, size)
	}
	var hdr [recordHeaderSize]byte
	if _, err := l.f.ReadAt(hdr[:], off); err != nil {
		return nil, 0, fmt.Errorf("wal: read header: %w", err)
	}
	n := int64(binary.LittleEndian.Uint32(hdr[:4]))
	sum := binary.LittleEndian.Uint32(hdr[4:])
	if off+recordHeaderSize+n > size {
		return nil, 0, fmt.Errorf("wal: truncated record at %d", off)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(io.NewSectionReader(l.f, off+recordHeaderSize, n), payload); err != nil {
		return nil, 0, fmt.Errorf("wal: read payload: %w", err)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, 0, fmt.Errorf("wal: checksum mismatch at %d", off)
	}
	return payload, off + recordHeaderSize + n, nil
}

// Scan invokes fn for each record starting at offset from, in append order,
// until the end of the log or fn returns false. It returns the offset just
// past the last visited record.
func (l *Log) Scan(from int64, fn func(off int64, payload []byte) bool) (int64, error) {
	l.mu.RLock()
	end := l.size
	l.mu.RUnlock()
	off := from
	for off < end {
		payload, next, err := l.readAt(off)
		if err != nil {
			return off, err
		}
		if !fn(off, payload) {
			return next, nil
		}
		off = next
	}
	return off, nil
}

// Size returns the current log size in bytes.
func (l *Log) Size() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.size
}

// Sync flushes the log to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Sync()
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Close syncs and closes the log file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	err := l.f.Close()
	l.f = nil
	return err
}
