// Package wal implements the TimeStore's update log (Sec 4.3): an
// append-only file of variable-size records ordered by monotonically
// increasing transaction timestamps, similar to a database write-ahead log
// with no retention policy. Records are addressed by byte offset so a
// B+Tree can index them by time, and can be read back individually or
// scanned as a range.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"aion/internal/vfs"
)

// recordHeaderSize is the per-record framing: length (4) + CRC32 (4).
const recordHeaderSize = 8

// ErrCorrupt marks records that fail framing validation (truncated tail or
// checksum mismatch), as opposed to I/O errors from the filesystem.
var ErrCorrupt = errors.New("wal: corrupt record")

// Log is an append-only record log. Appends are serialized; reads may run
// concurrently with appends.
type Log struct {
	mu       sync.RWMutex
	f        vfs.File
	size     int64 // next append offset
	synced   int64 // extent covered by the last successful Sync
	path     string
	writeBuf []byte // reused append scratch, guarded by mu
	repaired int64  // torn-tail bytes truncated by Open
	failed   error  // sticky: first append/sync I/O error; later writes fail-stop
	syncs    atomic.Int64
}

// Open creates or opens the log at path on the real filesystem.
func Open(path string) (*Log, error) { return OpenFS(vfs.OS, path) }

// OpenFS creates or opens the log at path on fs. Opening validates the
// log's tail: records are walked front to back (length + CRC), and any
// trailing bytes that do not form a complete valid record — the torn tail
// a crash mid-append or mid-fsync leaves behind — are truncated, so a
// half-written record can never sit under later appends and poison a
// future scan. The durable contract is therefore: everything before the
// last synced, fully-framed record survives; a torn tail is discarded.
func OpenFS(fs vfs.FS, path string) (*Log, error) {
	f, err := fs.OpenFile(path)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	size, err := f.Size()
	if err != nil {
		return nil, errors.Join(fmt.Errorf("wal: stat: %w", err), f.Close())
	}
	l := &Log{f: f, size: size, path: path}
	if err := l.repairTail(); err != nil {
		return nil, errors.Join(err, f.Close())
	}
	// The bytes that survived open (post tail-repair) are the durable
	// baseline: everything a crash could not take away is already on disk.
	l.synced = l.size
	return l, nil
}

// repairTail walks the whole log validating framing and truncates
// everything from the first invalid record on. Only framing errors
// (ErrCorrupt) trigger repair; I/O errors abort the open.
func (l *Log) repairTail() error {
	validEnd, err := l.ScanBatch(0, 0, func([]Frame) bool { return true })
	if err == nil {
		return nil
	}
	if !errors.Is(err, ErrCorrupt) {
		return fmt.Errorf("wal: tail validation: %w", err)
	}
	if terr := l.f.Truncate(validEnd); terr != nil {
		return fmt.Errorf("wal: tail repair truncate: %w", terr)
	}
	if serr := l.f.Sync(); serr != nil {
		return fmt.Errorf("wal: tail repair sync: %w", serr)
	}
	l.repaired = l.size - validEnd
	l.size = validEnd
	return nil
}

// RepairedBytes reports how many torn-tail bytes Open discarded (0 on a
// clean log).
func (l *Log) RepairedBytes() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.repaired
}

// OpenTemp opens a log on a fresh temporary file under dir (or the system
// temp dir if dir is empty); useful for benchmarks.
func OpenTemp(dir string) (*Log, error) {
	//aionlint:ignore vfsseam benchmark-only scratch log on an explicitly throwaway file; durable stores open through OpenFS
	f, err := os.CreateTemp(dir, "aion-wal-*.log")
	if err != nil {
		return nil, fmt.Errorf("wal: temp: %w", err)
	}
	return &Log{f: osTempFile{f}, path: f.Name()}, nil
}

// osTempFile adapts the CreateTemp handle to vfs.File.
type osTempFile struct{ *os.File }

func (f osTempFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Append writes one record and returns its offset. Header and payload go
// out in a single write to keep the per-update ingestion cost low.
//
// After any append or sync I/O failure the log fails stop: every later
// Append and Sync returns the original error. A write that failed may have
// left a torn record on disk, and an fsync that failed may have dropped
// dirty pages (the kernel clears the error state after reporting it once),
// so continuing to append would silently build on data that never became —
// and may never become — durable.
func (l *Log) Append(payload []byte) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return 0, fmt.Errorf("wal: log failed: %w", l.failed)
	}
	if cap(l.writeBuf) < recordHeaderSize+len(payload) {
		l.writeBuf = make([]byte, recordHeaderSize+len(payload))
	}
	buf := l.writeBuf[:recordHeaderSize+len(payload)]
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[recordHeaderSize:], payload)
	off := l.size
	if _, err := l.f.WriteAt(buf, off); err != nil {
		l.failed = err
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.size = off + int64(len(buf))
	return off, nil
}

// AppendBatch writes N records under one lock acquisition and one WriteAt,
// returning each record's offset. This is the group-commit primitive: a
// leader coalescing concurrent transactions pays one syscall for the whole
// batch instead of one per transaction, and a single following fsync covers
// every record. Each payload keeps its own length+CRC frame, so recovery
// still validates record by record — a torn batch write leaves a valid
// record prefix and the WAL's tail repair drops only the torn suffix,
// never a fully framed earlier record.
func (l *Log) AppendBatch(payloads [][]byte) ([]int64, error) {
	if len(payloads) == 0 {
		return nil, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return nil, fmt.Errorf("wal: log failed: %w", l.failed)
	}
	total := 0
	for _, p := range payloads {
		total += recordHeaderSize + len(p)
	}
	if cap(l.writeBuf) < total {
		l.writeBuf = make([]byte, total)
	}
	buf := l.writeBuf[:0]
	offs := make([]int64, len(payloads))
	off := l.size
	for i, p := range payloads {
		offs[i] = off + int64(len(buf))
		var hdr [recordHeaderSize]byte
		binary.LittleEndian.PutUint32(hdr[:4], uint32(len(p)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(p))
		buf = append(buf, hdr[:]...)
		buf = append(buf, p...)
	}
	if _, err := l.f.WriteAt(buf, off); err != nil {
		l.failed = err
		return nil, fmt.Errorf("wal: append batch: %w", err)
	}
	l.size = off + int64(len(buf))
	l.writeBuf = buf[:0]
	return offs, nil
}

// ReadRange returns the exact bytes [from, to) of the log file — headers
// and payloads alike, no record alignment. The range must lie within the
// fsync-covered extent: replication's tail-CRC verification compares these
// bytes positionally across nodes, and only durable bytes are comparable.
func (l *Log) ReadRange(from, to int64) ([]byte, error) {
	durable := l.SyncedSize()
	if from < 0 || from > to || to > durable {
		return nil, fmt.Errorf("wal: range [%d,%d) outside durable extent %d", from, to, durable)
	}
	buf := make([]byte, to-from)
	if to > from {
		if _, err := l.f.ReadAt(buf, from); err != nil {
			return nil, fmt.Errorf("wal: range read at %d: %w", from, err)
		}
	}
	return buf, nil
}

// ReadAt returns the record stored at the given offset.
func (l *Log) ReadAt(off int64) ([]byte, error) {
	payload, _, err := l.readAt(off)
	return payload, err
}

func (l *Log) readAt(off int64) (payload []byte, next int64, err error) {
	l.mu.RLock()
	size := l.size
	l.mu.RUnlock()
	if off < 0 || off+recordHeaderSize > size {
		return nil, 0, fmt.Errorf("wal: offset %d out of range (size %d)", off, size)
	}
	var hdr [recordHeaderSize]byte
	if _, err := l.f.ReadAt(hdr[:], off); err != nil {
		return nil, 0, fmt.Errorf("wal: read header: %w", err)
	}
	n := int64(binary.LittleEndian.Uint32(hdr[:4]))
	sum := binary.LittleEndian.Uint32(hdr[4:])
	if off+recordHeaderSize+n > size {
		return nil, 0, fmt.Errorf("%w: truncated record at %d", ErrCorrupt, off)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(io.NewSectionReader(l.f, off+recordHeaderSize, n), payload); err != nil {
		return nil, 0, fmt.Errorf("wal: read payload: %w", err)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, 0, fmt.Errorf("%w: checksum mismatch at %d", ErrCorrupt, off)
	}
	return payload, off + recordHeaderSize + n, nil
}

// Scan invokes fn for each record starting at offset from, in append order,
// until the end of the log or fn returns false. It returns the offset just
// past the last visited record. The payload slice aliases an internal
// readahead buffer and is valid only until fn returns.
func (l *Log) Scan(from int64, fn func(off int64, payload []byte) bool) (int64, error) {
	resume := from
	_, err := l.ScanBatch(from, 0, func(frames []Frame) bool {
		for _, fr := range frames {
			ok := fn(fr.Off, fr.Payload)
			resume = fr.Off + recordHeaderSize + int64(len(fr.Payload))
			if !ok {
				return false
			}
		}
		return true
	})
	return resume, err
}

// Frame is one log record surfaced by ScanBatch. Payload aliases the scan's
// readahead buffer and is valid only until the batch callback returns;
// callers that hand frames to concurrent decode workers must copy it first.
type Frame struct {
	Off     int64
	Payload []byte
}

// DefaultReadahead is the ScanBatch chunk size used when none is given.
const DefaultReadahead = 1 << 20

// ScanBatch reads the log in large readahead chunks and invokes fn once per
// chunk with every complete, CRC-verified record it contains, amortizing one
// syscall over hundreds of records (replay is TimeStore's hottest read
// path). A record that straddles a chunk boundary is re-read at the start
// of the next chunk; a record larger than the readahead grows the buffer.
// Scanning stops at the end of the log or when fn returns false; the return
// value is the offset just past the last batch handed to fn.
func (l *Log) ScanBatch(from int64, readahead int, fn func(frames []Frame) bool) (int64, error) {
	l.mu.RLock()
	end := l.size
	l.mu.RUnlock()
	if from < 0 {
		return from, fmt.Errorf("wal: offset %d out of range (size %d)", from, end)
	}
	if readahead < recordHeaderSize {
		readahead = DefaultReadahead
	}
	buf := make([]byte, readahead)
	var frames []Frame
	off := from
	for off < end {
		n := int64(len(buf))
		if n > end-off {
			n = end - off
		}
		chunk := buf[:n]
		if _, err := l.f.ReadAt(chunk, off); err != nil {
			return off, fmt.Errorf("wal: readahead at %d: %w", off, err)
		}
		frames = frames[:0]
		pos := 0
		var parseErr error
		for pos+recordHeaderSize <= len(chunk) {
			plen := int(binary.LittleEndian.Uint32(chunk[pos:]))
			sum := binary.LittleEndian.Uint32(chunk[pos+4:])
			recEnd := pos + recordHeaderSize + plen
			if off+int64(recEnd) > end {
				parseErr = fmt.Errorf("%w: truncated record at %d", ErrCorrupt, off+int64(pos))
				break
			}
			if recEnd > len(chunk) {
				break // straddles the chunk boundary; next chunk restarts here
			}
			payload := chunk[pos+recordHeaderSize : recEnd]
			if crc32.ChecksumIEEE(payload) != sum {
				parseErr = fmt.Errorf("%w: checksum mismatch at %d", ErrCorrupt, off+int64(pos))
				break
			}
			frames = append(frames, Frame{Off: off + int64(pos), Payload: payload})
			pos = recEnd
		}
		if pos == 0 && parseErr == nil {
			if len(chunk) < recordHeaderSize {
				// A tail fragment smaller than a record header: torn write.
				return off, fmt.Errorf("%w: truncated record at %d", ErrCorrupt, off)
			}
			// A single record larger than the buffer: grow to fit it.
			plen := int(binary.LittleEndian.Uint32(chunk))
			buf = make([]byte, recordHeaderSize+plen)
			continue
		}
		// Records parsed before a mid-chunk corruption are still delivered,
		// so a callback that stops before the bad record never sees the
		// error — the same behaviour as the record-at-a-time Scan.
		if len(frames) > 0 && !fn(frames) {
			return off + int64(pos), nil
		}
		if parseErr != nil {
			return off + int64(pos), parseErr
		}
		off += int64(pos)
	}
	return off, nil
}

// Size returns the current log size in bytes.
func (l *Log) Size() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.size
}

// Sync flushes the log to stable storage. A failed sync poisons the log
// (see Append): the bytes it covered may be gone.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return fmt.Errorf("wal: log failed: %w", l.failed)
	}
	//aionlint:ignore lockio fsync must serialize with appends so the sticky fail-stop error is ordered before any later write; readers only take mu for the size field, never across I/O
	if err := l.f.Sync(); err != nil {
		l.failed = err
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.synced = l.size
	l.syncs.Add(1)
	return nil
}

// SyncedSize returns the log extent covered by the last successful Sync:
// the prefix guaranteed to survive a crash. Replication ships only bytes
// below this watermark, so a follower can never hold a record its primary
// might lose.
func (l *Log) SyncedSize() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.synced
}

// Syncs reports how many successful Sync calls the log has issued — the
// denominator the group-commit benchmarks use for fsyncs-per-commit.
func (l *Log) Syncs() int64 { return l.syncs.Load() }

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Close syncs and closes the log file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	//aionlint:ignore lockio final fsync of a log being torn down; no reader or appender can be admitted after Close takes the write lock
	if err := l.f.Sync(); err != nil {
		return errors.Join(err, l.f.Close())
	}
	l.synced = l.size
	err := l.f.Close()
	l.f = nil
	return err
}
