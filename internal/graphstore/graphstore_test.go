package graphstore

import (
	"sync"
	"testing"

	"aion/internal/memgraph"
	"aion/internal/model"
)

func snapshotAt(t *testing.T, ts model.Timestamp, nodes int) *memgraph.Graph {
	t.Helper()
	g := memgraph.New()
	for i := 0; i < nodes; i++ {
		if err := g.Apply(model.AddNode(1, model.NodeID(i), nil, nil)); err != nil {
			t.Fatal(err)
		}
	}
	g.SetTimestamp(ts)
	return g
}

func TestPutGetExact(t *testing.T) {
	s := New(1 << 20)
	s.Put(snapshotAt(t, 10, 5))
	g, ok := s.Get(10)
	if !ok || g.NodeCount() != 5 {
		t.Fatalf("Get(10) = %v %v", g, ok)
	}
	if _, ok := s.Get(11); ok {
		t.Error("missing ts must miss")
	}
}

func TestFloorSelectsClosestBelow(t *testing.T) {
	s := New(1 << 20)
	s.Put(snapshotAt(t, 10, 1))
	s.Put(snapshotAt(t, 20, 2))
	s.Put(snapshotAt(t, 30, 3))
	g, snapTS, ok := s.Floor(25)
	if !ok || snapTS != 20 || g.NodeCount() != 2 {
		t.Fatalf("Floor(25) = ts %d nodes %d ok %v", snapTS, g.NodeCount(), ok)
	}
	if _, _, ok := s.Floor(5); ok {
		t.Error("floor below all snapshots must miss")
	}
	_, snapTS, _ = s.Floor(30)
	if snapTS != 30 {
		t.Error("exact floor")
	}
	_, snapTS, _ = s.Floor(1 << 40)
	if snapTS != 30 {
		t.Error("floor above all returns max")
	}
}

func TestReturnedSnapshotIsIsolated(t *testing.T) {
	s := New(1 << 20)
	s.Put(snapshotAt(t, 10, 2))
	g1, _ := s.Get(10)
	if err := g1.Apply(model.AddNode(11, 99, nil, nil)); err != nil {
		t.Fatal(err)
	}
	g2, _ := s.Get(10)
	if g2.NodeCount() != 2 {
		t.Error("cache must not observe caller mutations (CoW)")
	}
}

func TestEvictionByBytes(t *testing.T) {
	one := snapshotAt(t, 1, 100)
	budget := one.ApproxBytes()*2 + 10
	s := New(budget)
	for ts := model.Timestamp(1); ts <= 10; ts++ {
		s.Put(snapshotAt(t, ts, 100))
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatal("expected evictions")
	}
	if st.Bytes > budget {
		t.Errorf("bytes %d over budget %d", st.Bytes, budget)
	}
	// The most recently inserted snapshot must still be present.
	if _, ok := s.Get(10); !ok {
		t.Error("latest snapshot evicted")
	}
}

func TestLRUOrderingKeepsHotEntries(t *testing.T) {
	one := snapshotAt(t, 1, 50)
	s := New(one.ApproxBytes()*3 + 10)
	s.Put(snapshotAt(t, 1, 50))
	s.Put(snapshotAt(t, 2, 50))
	s.Put(snapshotAt(t, 3, 50))
	// Touch ts=1 so it becomes most recently used.
	s.Get(1)
	s.Put(snapshotAt(t, 4, 50)) // evicts ts=2 (LRU), not ts=1
	if _, ok := s.Get(1); !ok {
		t.Error("hot entry evicted")
	}
	if _, ok := s.Get(2); ok {
		t.Error("cold entry retained")
	}
}

func TestLatestGraphMaintenance(t *testing.T) {
	s := New(1 << 20)
	if err := s.ApplyToLatest(model.AddNode(1, 0, nil, nil)); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyToLatest(model.AddNode(2, 1, nil, nil)); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyToLatest(model.AddRel(3, 0, 0, 1, "R", nil)); err != nil {
		t.Fatal(err)
	}
	g := s.Latest()
	if g.NodeCount() != 2 || g.RelCount() != 1 {
		t.Fatalf("latest = %d/%d", g.NodeCount(), g.RelCount())
	}
	if s.LatestTimestamp() != 3 {
		t.Errorf("latest ts = %d", s.LatestTimestamp())
	}
	// Mutating the returned clone must not corrupt the maintained copy.
	g.Apply(model.AddNode(4, 9, nil, nil))
	if s.Latest().NodeCount() != 2 {
		t.Error("latest graph corrupted by caller")
	}
}

func TestPutReplaceSameTimestamp(t *testing.T) {
	s := New(1 << 20)
	s.Put(snapshotAt(t, 10, 1))
	s.Put(snapshotAt(t, 10, 7))
	g, ok := s.Get(10)
	if !ok || g.NodeCount() != 7 {
		t.Errorf("replacement: %d nodes", g.NodeCount())
	}
	if s.Stats().Snapshots != 1 {
		t.Errorf("snapshots = %d", s.Stats().Snapshots)
	}
}

func TestConcurrentReadersAndWriter(t *testing.T) {
	s := New(1 << 20)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			s.ApplyToLatest(model.AddNode(model.Timestamp(i+1), model.NodeID(i), nil, nil))
			if i%50 == 0 {
				g := s.Latest()
				g.SetTimestamp(model.Timestamp(i + 1))
				s.Put(g)
			}
		}
	}()
	for i := 0; i < 200; i++ {
		g := s.Latest()
		_ = g.NodeCount()
		s.Floor(model.Timestamp(i * 2))
		s.LatestCounts()
		s.LatestNode(model.NodeID(i))
	}
	<-done
	if n, _ := s.LatestCounts(); n != 500 {
		t.Errorf("nodes = %d", n)
	}
}

// TestPutOwnedIsolation: a PutOwned graph is served back as CoW clones that
// do not disturb the cached state when mutated.
func TestPutOwnedIsolation(t *testing.T) {
	s := New(1 << 20)
	g := memgraph.New()
	if err := g.Apply(model.AddNode(5, 0, []string{"A"}, nil)); err != nil {
		t.Fatal(err)
	}
	s.PutOwned(g)
	c1, ok := s.Get(5)
	if !ok || c1.NodeCount() != 1 {
		t.Fatal("PutOwned graph not cached")
	}
	if err := c1.Apply(model.AddNode(6, 1, nil, nil)); err != nil {
		t.Fatal(err)
	}
	c2, _ := s.Get(5)
	if c2.NodeCount() != 1 {
		t.Errorf("mutating a handed-out clone leaked into the cache: %d nodes", c2.NodeCount())
	}
}

// TestConcurrentPutAndFloor hammers the cache from writers and readers at
// once (run with -race): the access pattern of background snapshot persists
// racing GetGraph reads.
func TestConcurrentPutAndFloor(t *testing.T) {
	s := New(1 << 20)
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				g := memgraph.New()
				ts := model.Timestamp(i*2 + w + 1)
				if err := g.Apply(model.AddNode(ts, model.NodeID(i), nil, nil)); err != nil {
					t.Error(err)
					return
				}
				if i%2 == 0 {
					s.Put(g)
				} else {
					s.PutOwned(g)
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				if g, _, ok := s.Floor(model.Timestamp(i + 1)); ok {
					// Mutating the clone must be safe and private.
					if err := g.Apply(model.AddNode(model.TSInfinity-1, 10_000, nil, nil)); err != nil {
						t.Error(err)
						return
					}
				}
				s.Get(model.Timestamp(i + 1))
			}
		}()
	}
	wg.Wait()
}
