// Package graphstore implements the GraphStore (Sec 5.1): an in-memory
// Least-Recently-Used cache of graph snapshots keyed by timestamp. It also
// maintains the latest graph version in memory, HTAP-style, by having the
// owner apply all committed updates synchronously — which allows fast
// snapshot replication without expensive read transactions against the host
// database. Snapshots are handed out as Copy-on-Write clones (Sec 5.2) so
// callers can replay updates forward without disturbing cached state.
package graphstore

import (
	"container/list"
	"sort"
	"sync"

	"aion/internal/memgraph"
	"aion/internal/model"
)

type entry struct {
	ts    model.Timestamp
	g     *memgraph.Graph
	bytes int64
	elem  *list.Element
}

// Stats reports cache effectiveness counters.
type Stats struct {
	Hits, Misses, Evictions uint64
	Bytes                   int64
	Snapshots               int
}

// Store is the LRU snapshot cache plus the synchronously maintained latest
// graph. All methods are safe for concurrent use.
type Store struct {
	mu       sync.Mutex
	capacity int64 // byte budget for cached snapshots
	bytes    int64
	entries  map[model.Timestamp]*entry
	order    []model.Timestamp // sorted, for floor lookups
	lru      *list.List        // front = most recently used
	latest   *memgraph.Graph
	stats    Stats
}

// New creates a GraphStore with the given snapshot byte budget.
func New(capacityBytes int64) *Store {
	return NewWithLatest(capacityBytes, memgraph.New())
}

// NewWithLatest creates a GraphStore whose latest graph is pre-seeded with
// a recovered state (used on reopen, when the latest graph is rebuilt from
// the newest snapshot plus the log tail).
func NewWithLatest(capacityBytes int64, latest *memgraph.Graph) *Store {
	return &Store{
		capacity: capacityBytes,
		entries:  make(map[model.Timestamp]*entry),
		lru:      list.New(),
		latest:   latest,
	}
}

// ApplyToLatest folds a committed update into the latest in-memory graph.
func (s *Store) ApplyToLatest(u model.Update) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.latest.Apply(u)
}

// Latest returns a CoW clone of the latest graph version.
func (s *Store) Latest() *memgraph.Graph {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.latest.Clone()
}

// LatestTimestamp returns the timestamp of the latest applied update.
func (s *Store) LatestTimestamp() model.Timestamp {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.latest.Timestamp()
}

// Put caches a snapshot under its own timestamp, evicting least recently
// used snapshots if the byte budget is exceeded. The cached copy is a CoW
// clone, so the caller may keep mutating g.
func (s *Store) Put(g *memgraph.Graph) { s.put(g.Clone()) }

// PutOwned caches a snapshot, taking ownership of g: no clone is made, so
// the caller must not mutate g afterwards. The TimeStore's background
// snapshot worker uses this to hand over its private graph without forcing
// a copy-on-write break on the next cache read.
func (s *Store) PutOwned(g *memgraph.Graph) { s.put(g) }

func (s *Store) put(g *memgraph.Graph) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts := g.Timestamp()
	if old, ok := s.entries[ts]; ok {
		s.bytes -= old.bytes
		s.lru.Remove(old.elem)
		delete(s.entries, ts)
		s.removeOrder(ts)
	}
	e := &entry{ts: ts, g: g, bytes: g.ApproxBytes()}
	e.elem = s.lru.PushFront(e)
	s.entries[ts] = e
	s.bytes += e.bytes
	s.insertOrder(ts)
	s.evict()
}

func (s *Store) insertOrder(ts model.Timestamp) {
	i := sort.Search(len(s.order), func(i int) bool { return s.order[i] >= ts })
	s.order = append(s.order, 0)
	copy(s.order[i+1:], s.order[i:])
	s.order[i] = ts
}

func (s *Store) removeOrder(ts model.Timestamp) {
	i := sort.Search(len(s.order), func(i int) bool { return s.order[i] >= ts })
	if i < len(s.order) && s.order[i] == ts {
		s.order = append(s.order[:i], s.order[i+1:]...)
	}
}

func (s *Store) evict() {
	for s.bytes > s.capacity && s.lru.Len() > 1 {
		back := s.lru.Back()
		e := back.Value.(*entry)
		s.lru.Remove(back)
		delete(s.entries, e.ts)
		s.removeOrder(e.ts)
		s.bytes -= e.bytes
		s.stats.Evictions++
	}
}

// Get returns a CoW clone of the snapshot cached exactly at ts.
func (s *Store) Get(ts model.Timestamp) (*memgraph.Graph, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[ts]
	if !ok {
		s.stats.Misses++
		return nil, false
	}
	s.stats.Hits++
	s.lru.MoveToFront(e.elem)
	return e.g.Clone(), true
}

// Floor returns a CoW clone of the cached snapshot with the largest
// timestamp <= ts, so the caller can replay forward changes to reach the
// exact state (Sec 4.3).
func (s *Store) Floor(ts model.Timestamp) (*memgraph.Graph, model.Timestamp, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := sort.Search(len(s.order), func(i int) bool { return s.order[i] > ts })
	if i == 0 {
		s.stats.Misses++
		return nil, 0, false
	}
	snapTS := s.order[i-1]
	e := s.entries[snapTS]
	s.stats.Hits++
	s.lru.MoveToFront(e.elem)
	return e.g.Clone(), snapTS, true
}

// LatestNode returns the current version of a node from the latest graph
// without cloning. The returned node must not be mutated.
func (s *Store) LatestNode(id model.NodeID) *model.Node {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.latest.Node(id)
}

// LatestRel returns the current version of a relationship from the latest
// graph without cloning. The returned value must not be mutated.
func (s *Store) LatestRel(id model.RelID) *model.Rel {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.latest.Rel(id)
}

// LatestCounts returns the node and relationship counts of the latest graph.
func (s *Store) LatestCounts() (nodes, rels int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.latest.NodeCount(), s.latest.RelCount()
}

// Stats returns a snapshot of the cache counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Bytes = s.bytes
	st.Snapshots = len(s.entries)
	return st
}
