package enc

import (
	"encoding/binary"
	"fmt"

	"aion/internal/model"
)

// Delta snapshot records: the header frame of the .dsnap chain files that
// sealed TimeStore partitions store their full and differential snapshots
// in (ROADMAP item 1, after DeltaGraph's hierarchical delta snapshots).
// A chain file is a framed sequence of records in the same len+CRC framing
// as full snapshots; record 0 is the header encoded here, records 1..Count
// are ordinary update records (AppendUpdate format). The header makes every
// chain file self-describing: recovery derives the whole partition chain
// from the headers alone (derive-don't-trust), so the file name is only a
// convenience that must agree with the header.

// deltaMagic identifies a delta-snapshot header record ("Aion Delta
// Snapshot v1").
var deltaMagic = [4]byte{'A', 'D', 'S', '1'}

// DeltaKind distinguishes the two chain element flavours.
type DeltaKind uint8

const (
	// DeltaFull is a complete graph materialization at the header position.
	DeltaFull DeltaKind = 0
	// DeltaDiff is a differential snapshot: the compacted updates that turn
	// the base element's graph into this element's graph.
	DeltaDiff DeltaKind = 1
)

// String names the kind as used in chain file names.
func (k DeltaKind) String() string {
	if k == DeltaFull {
		return "full"
	}
	return "delta"
}

// DeltaHeader is the metadata record of one chain element. TS/Seq is the
// exact log position (timestamp, sequence) the element is complete
// through; BaseTS/BaseSeq is the position of the element a DeltaDiff
// applies on top of (unused for DeltaFull); LogOff is the partition-log
// offset of the first record NOT covered by the element, so replay past
// the element starts there; Count is the number of update records that
// follow the header in the file.
type DeltaHeader struct {
	Kind    DeltaKind
	TS      model.Timestamp
	Seq     uint32
	BaseTS  model.Timestamp
	BaseSeq uint32
	LogOff  int64
	Count   uint64
}

// AppendDeltaHeader encodes h onto buf and returns the extended slice.
// Timestamps are encoded as uvarints of their two's-complement bit
// pattern, so the -1 entry position (the state before any update) encodes
// losslessly.
func AppendDeltaHeader(buf []byte, h DeltaHeader) []byte {
	buf = append(buf, deltaMagic[:]...)
	buf = append(buf, byte(h.Kind))
	buf = binary.AppendUvarint(buf, uint64(h.TS))
	buf = binary.AppendUvarint(buf, uint64(h.Seq))
	buf = binary.AppendUvarint(buf, uint64(h.BaseTS))
	buf = binary.AppendUvarint(buf, uint64(h.BaseSeq))
	buf = binary.AppendUvarint(buf, uint64(h.LogOff))
	buf = binary.AppendUvarint(buf, h.Count)
	return buf
}

// DecodeDeltaHeader decodes a record produced by AppendDeltaHeader,
// rejecting anything that is not a well-formed header (wrong magic,
// unknown kind, truncated or oversized fields, trailing garbage).
func DecodeDeltaHeader(b []byte) (DeltaHeader, error) {
	var h DeltaHeader
	if len(b) < len(deltaMagic)+1 {
		return h, fmt.Errorf("enc: delta header too short (%d bytes)", len(b))
	}
	for i, m := range deltaMagic {
		if b[i] != m {
			return h, fmt.Errorf("enc: bad delta magic %q", b[:len(deltaMagic)])
		}
	}
	b = b[len(deltaMagic):]
	h.Kind = DeltaKind(b[0])
	if h.Kind != DeltaFull && h.Kind != DeltaDiff {
		return h, fmt.Errorf("enc: unknown delta kind %d", b[0])
	}
	b = b[1:]
	fields := []struct {
		name string
		max  uint64 // 0 means the full uint64 range
		set  func(uint64)
	}{
		{"ts", 0, func(v uint64) { h.TS = model.Timestamp(v) }},
		{"seq", 1<<32 - 1, func(v uint64) { h.Seq = uint32(v) }},
		{"base_ts", 0, func(v uint64) { h.BaseTS = model.Timestamp(v) }},
		{"base_seq", 1<<32 - 1, func(v uint64) { h.BaseSeq = uint32(v) }},
		{"log_off", 0, func(v uint64) { h.LogOff = int64(v) }},
		{"count", 0, func(v uint64) { h.Count = v }},
	}
	for _, f := range fields {
		v, w := binary.Uvarint(b)
		if w <= 0 {
			return h, fmt.Errorf("enc: delta header %s truncated", f.name)
		}
		// Uvarint tolerates non-minimal encodings (a zero final byte adds
		// nothing); reject them so exactly one byte string encodes each
		// header — accepted bytes must re-encode identically.
		if w > 1 && b[w-1] == 0 {
			return h, fmt.Errorf("enc: delta header %s not minimally encoded", f.name)
		}
		if f.max != 0 && v > f.max {
			return h, fmt.Errorf("enc: delta header %s %d out of range", f.name, v)
		}
		b = b[w:]
		f.set(v)
	}
	if len(b) != 0 {
		return h, fmt.Errorf("enc: %d trailing bytes after delta header", len(b))
	}
	return h, h.validate()
}

// validate rejects headers whose fields are semantically impossible, so a
// mutated-but-parseable header cannot send recovery to a bogus position.
func (h DeltaHeader) validate() error {
	if h.LogOff < 0 {
		return fmt.Errorf("enc: delta header log offset %d negative", h.LogOff)
	}
	if h.Kind == DeltaDiff {
		if h.BaseTS > h.TS || (h.BaseTS == h.TS && h.BaseSeq >= h.Seq) {
			return fmt.Errorf("enc: delta base (%d,%d) not before position (%d,%d)",
				h.BaseTS, h.BaseSeq, h.TS, h.Seq)
		}
	}
	return nil
}
