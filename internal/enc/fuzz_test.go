package enc

import (
	"bytes"
	"math/rand"
	"testing"

	"aion/internal/model"
	"aion/internal/strstore"
)

// TestDecodeRandomBytesNeverPanics drives the decoder with random garbage:
// it must return errors, not panic, whatever the input (defensive decode on
// data read back from disk).
func TestDecodeRandomBytesNeverPanics(t *testing.T) {
	c := NewCodec(strstore.NewMem())
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 50000; i++ {
		n := rng.Intn(40)
		b := make([]byte, n)
		rng.Read(b)
		_, _ = c.DecodeUpdate(b) // must not panic
	}
}

// seedUpdates is one valid update of every kind, covering each value type —
// the fuzz corpus starts from real record bytes so mutations explore the
// decoder's deep paths instead of dying on the first tag byte.
func seedUpdates() []model.Update {
	return []model.Update{
		model.AddNode(1, 10, []string{"Person", "Org"}, model.Properties{
			"s": model.StringValue("x"), "i": model.IntValue(-7)}),
		model.UpdateNode(2, 10, []string{"City"}, []string{"Org"},
			model.Properties{"f": model.FloatValue(2.5)}, []string{"s"}),
		model.AddRel(3, 4, 10, 11, "KNOWS", model.Properties{
			"ia": model.IntArrayValue([]int64{1, 2, 3}), "b": model.BoolValue(true)}),
		model.UpdateRel(4, 4, 10, 11, model.Properties{"w": model.IntValue(9)}, nil),
		model.DeleteRel(5, 4, 10, 11),
		model.DeleteNode(6, 11),
	}
}

// FuzzDecodeUpdates is the harness's fuzz leg (wired as `make fuzz-smoke`):
// DecodeUpdate/DecodeUpdates must never panic on arbitrary bytes — they see
// exactly this input class when recovery replays a log whose tail a crash
// tore — and every successfully decoded update must round-trip: re-encoding
// it and decoding that must reproduce the same bytes (property keys are
// encoded sorted, so the bytes are canonical).
func FuzzDecodeUpdates(f *testing.F) {
	seedCodec := NewCodec(strstore.NewMem())
	for _, u := range seedUpdates() {
		b, err := seedCodec.EncodeUpdate(u)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, b []byte) {
		st := strstore.NewMem()
		// Populate the string table so small refs in mutated records
		// resolve and decoding reaches past the ref-lookup guards.
		for _, s := range []string{"Person", "Org", "City", "KNOWS", "s", "i", "f", "ia", "b", "w", "x"} {
			if _, err := st.Intern(s); err != nil {
				t.Fatal(err)
			}
		}
		c := NewCodec(st)
		u, err := c.DecodeUpdate(b)
		if _, berr := c.DecodeUpdates(nil, [][]byte{b, b}); (berr == nil) != (err == nil) {
			t.Fatalf("DecodeUpdates disagrees with DecodeUpdate: %v vs %v", berr, err)
		}
		if err != nil {
			return
		}
		enc1, err := c.EncodeUpdate(u)
		if err != nil {
			t.Fatalf("re-encode of decoded update %v: %v", u, err)
		}
		u2, err := c.DecodeUpdate(enc1)
		if err != nil {
			t.Fatalf("decode of re-encoded update %v: %v", u, err)
		}
		enc2, err := c.EncodeUpdate(u2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("round-trip not canonical:\n  first  %x\n  second %x", enc1, enc2)
		}
	})
}

// TestDecodeTruncatedValidRecords truncates real records at every length:
// each prefix must decode cleanly or fail cleanly.
func TestDecodeTruncatedValidRecords(t *testing.T) {
	c := newCodec()
	full, err := c.EncodeUpdate(model.AddRel(42, 7, 1, 2, "KNOWS",
		model.Properties{
			"s":  model.StringValue("x"),
			"ia": model.IntArrayValue([]int64{1, 2, 3}),
			"f":  model.FloatValue(1.5),
		}))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(full); cut++ {
		_, _ = c.DecodeUpdate(full[:cut]) // must not panic
	}
}
