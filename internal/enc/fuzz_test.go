package enc

import (
	"math/rand"
	"testing"

	"aion/internal/model"
	"aion/internal/strstore"
)

// TestDecodeRandomBytesNeverPanics drives the decoder with random garbage:
// it must return errors, not panic, whatever the input (defensive decode on
// data read back from disk).
func TestDecodeRandomBytesNeverPanics(t *testing.T) {
	c := NewCodec(strstore.NewMem())
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 50000; i++ {
		n := rng.Intn(40)
		b := make([]byte, n)
		rng.Read(b)
		_, _ = c.DecodeUpdate(b) // must not panic
	}
}

// TestDecodeTruncatedValidRecords truncates real records at every length:
// each prefix must decode cleanly or fail cleanly.
func TestDecodeTruncatedValidRecords(t *testing.T) {
	c := newCodec()
	full, err := c.EncodeUpdate(model.AddRel(42, 7, 1, 2, "KNOWS",
		model.Properties{
			"s":  model.StringValue("x"),
			"ia": model.IntArrayValue([]int64{1, 2, 3}),
			"f":  model.FloatValue(1.5),
		}))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(full); cut++ {
		_, _ = c.DecodeUpdate(full[:cut]) // must not panic
	}
}
