package enc

import (
	"bytes"
	"testing"

	"aion/internal/model"
)

// seedDeltaHeaders covers both kinds and the boundary values the partition
// chain actually produces: the -1 entry position of a genesis partition,
// zero and large sequence numbers, and a large log offset.
func seedDeltaHeaders() []DeltaHeader {
	return []DeltaHeader{
		{Kind: DeltaFull, TS: -1, Seq: 0, LogOff: 0, Count: 0},
		{Kind: DeltaFull, TS: 1 << 40, Seq: 7, LogOff: 1 << 33, Count: 12345},
		{Kind: DeltaDiff, TS: 10, Seq: 3, BaseTS: 9, BaseSeq: 0, LogOff: 512, Count: 4},
		{Kind: DeltaDiff, TS: 10, Seq: 9, BaseTS: 10, BaseSeq: 3, LogOff: 640, Count: 1},
		{Kind: DeltaDiff, TS: 2, Seq: 0, BaseTS: -1, BaseSeq: 0, LogOff: 64, Count: 2},
	}
}

// FuzzDecodeDelta is the delta-snapshot leg of `make fuzz-smoke`: recovery
// reads chain-file headers straight off disk (possibly torn or mutated), so
// DecodeDeltaHeader must never panic, and every header it accepts must
// round-trip canonically — re-encoding the decoded header reproduces the
// accepted bytes exactly.
func FuzzDecodeDelta(f *testing.F) {
	for _, h := range seedDeltaHeaders() {
		f.Add(AppendDeltaHeader(nil, h))
	}
	f.Add([]byte{})
	f.Add([]byte{'A', 'D', 'S', '1'})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, b []byte) {
		h, err := DecodeDeltaHeader(b)
		if err != nil {
			return
		}
		enc1 := AppendDeltaHeader(nil, h)
		if !bytes.Equal(enc1, b) {
			t.Fatalf("accepted header is not canonical:\n  input    %x\n  re-coded %x", b, enc1)
		}
		h2, err := DecodeDeltaHeader(enc1)
		if err != nil {
			t.Fatalf("re-decode of accepted header %+v: %v", h, err)
		}
		if h2 != h {
			t.Fatalf("round-trip changed header: %+v vs %+v", h, h2)
		}
	})
}

// TestDeltaHeaderRejects pins the defensive-decode guarantees the fuzzer
// explores: truncation at every length, wrong magic, bad kind, out-of-range
// sequence, and a delta whose base is not strictly before its position.
func TestDeltaHeaderRejects(t *testing.T) {
	full := AppendDeltaHeader(nil, DeltaHeader{
		Kind: DeltaDiff, TS: 99, Seq: 2, BaseTS: 98, BaseSeq: 5, LogOff: 1024, Count: 3})
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeDeltaHeader(full[:cut]); err == nil {
			t.Fatalf("truncated header (%d bytes) decoded without error", cut)
		}
	}
	if _, err := DecodeDeltaHeader(append([]byte("XXXX"), full[4:]...)); err == nil {
		t.Fatal("wrong magic accepted")
	}
	bad := append([]byte(nil), full...)
	bad[4] = 7 // unknown kind
	if _, err := DecodeDeltaHeader(bad); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := DecodeDeltaHeader(append(append([]byte(nil), full...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// A delta based at its own position is impossible.
	selfBased := AppendDeltaHeader(nil, DeltaHeader{
		Kind: DeltaDiff, TS: 5, Seq: 1, BaseTS: 5, BaseSeq: 1, LogOff: 1, Count: 1})
	if _, err := DecodeDeltaHeader(selfBased); err == nil {
		t.Fatal("self-based delta accepted")
	}
	// Non-minimal varint (0xff 0x00 is a two-byte spelling of 0x7f): the
	// same header must not be reachable from two different byte strings.
	canon := AppendDeltaHeader(nil, DeltaHeader{Kind: DeltaFull, TS: 0x7f})
	padded := append(append([]byte(nil), canon[:5]...), 0xff, 0x00)
	padded = append(padded, canon[6:]...)
	if _, err := DecodeDeltaHeader(canon); err != nil {
		t.Fatalf("canonical header rejected: %v", err)
	}
	if _, err := DecodeDeltaHeader(padded); err == nil {
		t.Fatal("non-minimal varint accepted")
	}
	// Round-trip of the genesis entry position (-1).
	entry := AppendDeltaHeader(nil, DeltaHeader{Kind: DeltaFull, TS: -1})
	h, err := DecodeDeltaHeader(entry)
	if err != nil {
		t.Fatal(err)
	}
	if h.TS != model.Timestamp(-1) {
		t.Fatalf("entry ts round-tripped to %d", h.TS)
	}
}
