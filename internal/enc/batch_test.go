package enc

import (
	"sync"
	"testing"

	"aion/internal/model"
)

func TestDecodeUpdatesRoundTrip(t *testing.T) {
	c := newCodec()
	var us []model.Update
	for i := 0; i < 50; i++ {
		us = append(us, model.AddNode(model.Timestamp(i+1), model.NodeID(i),
			[]string{"N"}, model.Properties{"i": model.IntValue(int64(i))}))
	}
	var payloads [][]byte
	for _, u := range us {
		b, err := c.EncodeUpdate(u)
		if err != nil {
			t.Fatal(err)
		}
		payloads = append(payloads, b)
	}
	got, err := c.DecodeUpdates(nil, payloads)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(us) {
		t.Fatalf("decoded %d, want %d", len(got), len(us))
	}
	for i, u := range got {
		if u.NodeID != us[i].NodeID || u.TS != us[i].TS || u.SetProps["i"].Int() != int64(i) {
			t.Fatalf("update %d decoded as %+v", i, u)
		}
	}
	// Appending into a prefilled dst preserves the prefix.
	got2, err := c.DecodeUpdates(got[:2:2], payloads[2:])
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != len(us) || got2[0].NodeID != 0 || got2[2].NodeID != 2 {
		t.Fatalf("prefix append broken: len %d", len(got2))
	}
}

func TestDecodeUpdatesError(t *testing.T) {
	c := newCodec()
	good, _ := c.EncodeUpdate(model.AddNode(1, 1, nil, nil))
	dst, err := c.DecodeUpdates(nil, [][]byte{good, {}, good})
	if err == nil {
		t.Fatal("empty record must fail")
	}
	if len(dst) != 1 {
		t.Errorf("prefix before the error must be returned, got %d", len(dst))
	}
}

// TestDecodeUpdatesConcurrent decodes the same batch from many goroutines,
// the access pattern of the snapshot-load worker stage (run with -race).
func TestDecodeUpdatesConcurrent(t *testing.T) {
	c := newCodec()
	var payloads [][]byte
	for i := 0; i < 200; i++ {
		b, _ := c.EncodeUpdate(model.AddNode(model.Timestamp(i+1), model.NodeID(i),
			[]string{"N", "M"}, model.Properties{"s": model.StringValue("v")}))
		payloads = append(payloads, b)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			us, err := c.DecodeUpdates(nil, payloads)
			if err != nil || len(us) != len(payloads) {
				t.Errorf("concurrent decode: %d updates, err %v", len(us), err)
			}
		}()
	}
	wg.Wait()
}

// TestEncodeUpdatesRoundTrip checks the batch encoder against both the
// per-update encoder (byte identity) and the batch decoder (symmetry).
func TestEncodeUpdatesRoundTrip(t *testing.T) {
	c := newCodec()
	us := []model.Update{
		model.AddNode(1, 1, []string{"A"}, model.Properties{"x": model.IntValue(9)}),
		model.AddRel(2, 1, 1, 1, "KNOWS", model.Properties{"w": model.StringValue("v")}),
		model.UpdateNode(3, 1, []string{"B"}, nil, model.Properties{"x": model.IntValue(10)}, nil),
		model.DeleteRel(4, 1, 1, 1),
		model.DeleteNode(5, 1),
	}
	payloads, backing, err := c.EncodeUpdates(nil, us)
	if err != nil {
		t.Fatal(err)
	}
	if len(payloads) != len(us) {
		t.Fatalf("encoded %d payloads, want %d", len(payloads), len(us))
	}
	total := 0
	for i, u := range us {
		single, err := c.EncodeUpdate(u)
		if err != nil {
			t.Fatal(err)
		}
		if string(payloads[i]) != string(single) {
			t.Fatalf("payload %d differs from EncodeUpdate", i)
		}
		total += len(single)
	}
	if len(backing) != total {
		t.Fatalf("backing is %d bytes, want %d", len(backing), total)
	}
	got, err := c.DecodeUpdates(nil, payloads)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range got {
		if u.Kind != us[i].Kind || u.TS != us[i].TS {
			t.Fatalf("update %d decoded as %+v, want %+v", i, u, us[i])
		}
	}
	// Reusing the backing buffer must not allocate per update.
	payloads2, _, err := c.EncodeUpdates(backing, us)
	if err != nil || len(payloads2) != len(us) {
		t.Fatalf("reuse: %d payloads, err %v", len(payloads2), err)
	}
}

func TestEncodeUpdatesEmptyAndError(t *testing.T) {
	c := newCodec()
	payloads, _, err := c.EncodeUpdates(nil, nil)
	if err != nil || len(payloads) != 0 {
		t.Fatalf("empty batch: %v %v", payloads, err)
	}
	bad := []model.Update{model.AddNode(1, 1, nil, nil), {Kind: model.OpKind(99)}}
	if _, _, err := c.EncodeUpdates(nil, bad); err == nil {
		t.Fatal("unknown op kind must fail the whole batch")
	}
}
