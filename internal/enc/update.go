package enc

import (
	"encoding/binary"
	"fmt"

	"aion/internal/model"
)

// Update record wire format (used by the TimeStore log and, re-keyed, by the
// LineageStore values):
//
//	header(1) | ts uvarint | ids... | labels | props
//
// The header packs the entity type and the deleted/delta state per Fig 3.
// Deleted entities require space only for their ID and timestamp.

func headerFor(u model.Update) byte {
	var h byte
	switch u.Kind {
	case model.OpAddNode, model.OpDeleteNode, model.OpUpdateNode:
		h = byte(TypeNode)
	default:
		h = byte(TypeRel)
	}
	switch u.Kind {
	case model.OpDeleteNode, model.OpDeleteRel:
		h |= headerDeletedBit
	case model.OpUpdateNode, model.OpUpdateRel:
		h |= headerDeltaBit
	}
	return h
}

// AppendUpdate encodes u onto buf and returns the extended slice.
func (c *Codec) AppendUpdate(buf []byte, u model.Update) ([]byte, error) {
	buf = append(buf, headerFor(u))
	buf = binary.AppendUvarint(buf, uint64(u.TS))
	var err error
	switch u.Kind {
	case model.OpAddNode, model.OpUpdateNode:
		buf = binary.AppendUvarint(buf, uint64(u.NodeID))
		if buf, err = c.appendLabels(buf, u.AddLabels, u.DelLabels); err != nil {
			return nil, err
		}
		if buf, err = c.appendProps(buf, u.SetProps, u.DelProps); err != nil {
			return nil, err
		}
	case model.OpDeleteNode:
		buf = binary.AppendUvarint(buf, uint64(u.NodeID))
	case model.OpAddRel:
		buf = binary.AppendUvarint(buf, uint64(u.RelID))
		buf = binary.AppendUvarint(buf, uint64(u.Src))
		buf = binary.AppendUvarint(buf, uint64(u.Tgt))
		r, err := c.Strings.Intern(u.RelLabel)
		if err != nil {
			return nil, err
		}
		buf = c.appendRef(buf, r, 0)
		if buf, err = c.appendProps(buf, u.SetProps, u.DelProps); err != nil {
			return nil, err
		}
	case model.OpUpdateRel:
		buf = binary.AppendUvarint(buf, uint64(u.RelID))
		buf = binary.AppendUvarint(buf, uint64(u.Src))
		buf = binary.AppendUvarint(buf, uint64(u.Tgt))
		if buf, err = c.appendProps(buf, u.SetProps, u.DelProps); err != nil {
			return nil, err
		}
	case model.OpDeleteRel:
		buf = binary.AppendUvarint(buf, uint64(u.RelID))
		buf = binary.AppendUvarint(buf, uint64(u.Src))
		buf = binary.AppendUvarint(buf, uint64(u.Tgt))
	default:
		return nil, fmt.Errorf("enc: unknown op kind %v", u.Kind)
	}
	return buf, nil
}

// EncodeUpdate encodes u into a fresh buffer.
func (c *Codec) EncodeUpdate(u model.Update) ([]byte, error) {
	return c.AppendUpdate(make([]byte, 0, 64), u)
}

// DecodeUpdate decodes a record produced by AppendUpdate.
func (c *Codec) DecodeUpdate(b []byte) (model.Update, error) {
	var u model.Update
	if len(b) < 1 {
		return u, fmt.Errorf("enc: empty update record")
	}
	h := b[0]
	b = b[1:]
	ts, w := binary.Uvarint(b)
	if w <= 0 {
		return u, fmt.Errorf("enc: bad ts")
	}
	b = b[w:]
	u.TS = model.Timestamp(ts)

	typ := EntityType(h & headerTypeMask)
	deleted := h&headerDeletedBit != 0
	delta := h&headerDeltaBit != 0

	readID := func() (int64, error) {
		v, w := binary.Uvarint(b)
		if w <= 0 {
			return 0, fmt.Errorf("enc: bad id")
		}
		b = b[w:]
		return int64(v), nil
	}

	switch typ {
	case TypeNode:
		id, err := readID()
		if err != nil {
			return u, err
		}
		u.NodeID = model.NodeID(id)
		switch {
		case deleted:
			u.Kind = model.OpDeleteNode
		case delta:
			u.Kind = model.OpUpdateNode
		default:
			u.Kind = model.OpAddNode
		}
		if deleted {
			return u, nil
		}
		var err2 error
		u.AddLabels, u.DelLabels, b, err2 = c.readLabels(b)
		if err2 != nil {
			return u, err2
		}
		u.SetProps, u.DelProps, _, err2 = c.readProps(b)
		return u, err2
	case TypeRel:
		id, err := readID()
		if err != nil {
			return u, err
		}
		u.RelID = model.RelID(id)
		src, err := readID()
		if err != nil {
			return u, err
		}
		tgt, err := readID()
		if err != nil {
			return u, err
		}
		u.Src, u.Tgt = model.NodeID(src), model.NodeID(tgt)
		switch {
		case deleted:
			u.Kind = model.OpDeleteRel
			return u, nil
		case delta:
			u.Kind = model.OpUpdateRel
		default:
			u.Kind = model.OpAddRel
			ref, _, rest, err := readRef(b)
			if err != nil {
				return u, err
			}
			b = rest
			u.RelLabel, err = c.Strings.Lookup(ref)
			if err != nil {
				return u, err
			}
		}
		var err2 error
		u.SetProps, u.DelProps, _, err2 = c.readProps(b)
		return u, err2
	}
	return u, fmt.Errorf("enc: unknown entity type %d", typ)
}
