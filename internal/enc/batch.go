package enc

import "aion/internal/model"

// DecodeUpdates decodes a batch of update records produced by AppendUpdate,
// appending the results to dst. It is the entry point the TimeStore's
// parallel pipelines use: one worker call amortizes the dispatch cost over
// a whole frame batch, and the codec is safe for concurrent decoding, so
// batches may be decoded on many workers at once. On error the updates
// decoded so far are returned alongside it.
func (c *Codec) DecodeUpdates(dst []model.Update, payloads [][]byte) ([]model.Update, error) {
	if cap(dst)-len(dst) < len(payloads) {
		grown := make([]model.Update, len(dst), len(dst)+len(payloads))
		copy(grown, dst)
		dst = grown
	}
	for _, p := range payloads {
		u, err := c.DecodeUpdate(p)
		if err != nil {
			return dst, err
		}
		dst = append(dst, u)
	}
	return dst, nil
}
