package enc

import "aion/internal/model"

// DecodeUpdates decodes a batch of update records produced by AppendUpdate,
// appending the results to dst. It is the entry point the TimeStore's
// parallel pipelines use: one worker call amortizes the dispatch cost over
// a whole frame batch, and the codec is safe for concurrent decoding, so
// batches may be decoded on many workers at once. On error the updates
// decoded so far are returned alongside it.
func (c *Codec) DecodeUpdates(dst []model.Update, payloads [][]byte) ([]model.Update, error) {
	if cap(dst)-len(dst) < len(payloads) {
		grown := make([]model.Update, len(dst), len(dst)+len(payloads))
		copy(grown, dst)
		dst = grown
	}
	for _, p := range payloads {
		u, err := c.DecodeUpdate(p)
		if err != nil {
			return dst, err
		}
		dst = append(dst, u)
	}
	return dst, nil
}

// EncodeUpdates is the batch encoder symmetric with DecodeUpdates: it
// encodes every update into one shared backing buffer (grown from buf, so
// append paths can recycle their scratch) and returns per-update payload
// slices aliasing it. The write-path callers — the host's group-commit
// leader and the TimeStore's AppendBatch — hand the payloads straight to
// wal.AppendBatch, so a whole transaction batch is encoded and logged with
// zero per-update allocations. The payload slices are valid until the
// backing buffer is reused; on error nothing is returned.
//
// Because appending can reallocate the backing array, payload slices are
// carved out only after every update is encoded.
func (c *Codec) EncodeUpdates(buf []byte, us []model.Update) (payloads [][]byte, backing []byte, err error) {
	buf = buf[:0]
	ends := make([]int, len(us))
	for i, u := range us {
		if buf, err = c.AppendUpdate(buf, u); err != nil {
			return nil, buf, err
		}
		ends[i] = len(buf)
	}
	payloads = make([][]byte, len(us))
	start := 0
	for i, end := range ends {
		payloads[i] = buf[start:end:end]
		start = end
	}
	return payloads, buf, nil
}
