package enc

import (
	"encoding/binary"

	"aion/internal/model"
)

// Composite B+Tree key encodings for the hybrid store (Table 2). All keys
// are big-endian so byte-wise lexicographic comparison matches numeric
// ordering; composite keys order first by entity identifier(s), then by
// timestamp, which keeps an entity's full history in the same or adjacent
// pages (Sec 4.4).

func putU64(b []byte, v uint64) []byte {
	var x [8]byte
	binary.BigEndian.PutUint64(x[:], v)
	return append(b, x[:]...)
}

// KeyTS encodes a TimeStore log-index key: (ts, seq). The sequence number
// disambiguates multiple updates committed at the same timestamp.
func KeyTS(ts model.Timestamp, seq uint32) []byte {
	b := make([]byte, 0, 12)
	b = putU64(b, uint64(ts))
	var s [4]byte
	binary.BigEndian.PutUint32(s[:], seq)
	return append(b, s[:]...)
}

// KeyTSPrefix encodes the timestamp-only prefix of KeyTS for range bounds.
func KeyTSPrefix(ts model.Timestamp) []byte {
	return putU64(make([]byte, 0, 8), uint64(ts))
}

// ParseKeyTS decodes a key written by KeyTS.
func ParseKeyTS(k []byte) (model.Timestamp, uint32) {
	return model.Timestamp(binary.BigEndian.Uint64(k)), binary.BigEndian.Uint32(k[8:])
}

// KeyNode encodes a LineageStore node key: (nodeId, ts).
func KeyNode(id model.NodeID, ts model.Timestamp) []byte {
	b := make([]byte, 0, 16)
	b = putU64(b, uint64(id))
	return putU64(b, uint64(ts))
}

// ParseKeyNode decodes a key written by KeyNode.
func ParseKeyNode(k []byte) (model.NodeID, model.Timestamp) {
	return model.NodeID(binary.BigEndian.Uint64(k)), model.Timestamp(binary.BigEndian.Uint64(k[8:]))
}

// KeyRel encodes a LineageStore relationship key: (relId, ts).
func KeyRel(id model.RelID, ts model.Timestamp) []byte {
	b := make([]byte, 0, 16)
	b = putU64(b, uint64(id))
	return putU64(b, uint64(ts))
}

// ParseKeyRel decodes a key written by KeyRel.
func ParseKeyRel(k []byte) (model.RelID, model.Timestamp) {
	return model.RelID(binary.BigEndian.Uint64(k)), model.Timestamp(binary.BigEndian.Uint64(k[8:]))
}

// KeyNeigh encodes a neighbourhood key: (aId, bId, ts). For the
// out-neighbours index a is the source and b the target; for the
// in-neighbours index a is the target and b the source (Sec 4.2).
func KeyNeigh(a, b model.NodeID, ts model.Timestamp) []byte {
	buf := make([]byte, 0, 24)
	buf = putU64(buf, uint64(a))
	buf = putU64(buf, uint64(b))
	return putU64(buf, uint64(ts))
}

// KeyNeighPrefix encodes the (aId) prefix for scanning all neighbours of a.
func KeyNeighPrefix(a model.NodeID) []byte {
	return putU64(make([]byte, 0, 8), uint64(a))
}

// ParseKeyNeigh decodes a key written by KeyNeigh.
func ParseKeyNeigh(k []byte) (a, b model.NodeID, ts model.Timestamp) {
	return model.NodeID(binary.BigEndian.Uint64(k)),
		model.NodeID(binary.BigEndian.Uint64(k[8:])),
		model.Timestamp(binary.BigEndian.Uint64(k[16:]))
}

// KeyNeigh4 extends KeyNeigh with the relationship id as a fourth
// component: (aId, bId, ts, relId). The paper keys neighbour entries by
// (srcId, tgtId, ts) alone (Table 2); we add the rel id so that multigraph
// relationships created between the same endpoints at the same timestamp
// cannot collide. Ordering by (node, neighbour, time) is preserved.
func KeyNeigh4(a, b model.NodeID, ts model.Timestamp, rel model.RelID) []byte {
	buf := make([]byte, 0, 32)
	buf = putU64(buf, uint64(a))
	buf = putU64(buf, uint64(b))
	buf = putU64(buf, uint64(ts))
	return putU64(buf, uint64(rel))
}

// ParseKeyNeigh4 decodes a key written by KeyNeigh4.
func ParseKeyNeigh4(k []byte) (a, b model.NodeID, ts model.Timestamp, rel model.RelID) {
	return model.NodeID(binary.BigEndian.Uint64(k)),
		model.NodeID(binary.BigEndian.Uint64(k[8:])),
		model.Timestamp(binary.BigEndian.Uint64(k[16:])),
		model.RelID(binary.BigEndian.Uint64(k[24:]))
}

// NeighValue encodes a neighbourhood index value: the relationship id plus a
// deletion flag, mapping the adjacency entry back to the source data.
func NeighValue(rel model.RelID, deleted bool) []byte {
	b := putU64(make([]byte, 0, 9), uint64(rel))
	if deleted {
		return append(b, 1)
	}
	return append(b, 0)
}

// ParseNeighValue decodes a value written by NeighValue.
func ParseNeighValue(v []byte) (model.RelID, bool) {
	return model.RelID(binary.BigEndian.Uint64(v)), len(v) > 8 && v[8] != 0
}

// U64Value encodes a plain uint64 value (e.g. a log offset).
func U64Value(v uint64) []byte { return putU64(make([]byte, 0, 8), v) }

// ParseU64Value decodes a value written by U64Value.
func ParseU64Value(b []byte) uint64 { return binary.BigEndian.Uint64(b) }
