package enc

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"aion/internal/model"
	"aion/internal/strstore"
)

func newCodec() *Codec { return NewCodec(strstore.NewMem()) }

func rtUpdate(t *testing.T, c *Codec, u model.Update) model.Update {
	t.Helper()
	b, err := c.EncodeUpdate(u)
	if err != nil {
		t.Fatalf("encode %v: %v", u, err)
	}
	got, err := c.DecodeUpdate(b)
	if err != nil {
		t.Fatalf("decode %v: %v", u, err)
	}
	return got
}

func updatesEqual(a, b model.Update) bool {
	a.Normalize()
	b.Normalize()
	if a.TS != b.TS || a.Kind != b.Kind || a.NodeID != b.NodeID ||
		a.RelID != b.RelID || a.Src != b.Src || a.Tgt != b.Tgt || a.RelLabel != b.RelLabel {
		return false
	}
	if !reflect.DeepEqual(a.AddLabels, b.AddLabels) || !reflect.DeepEqual(a.DelLabels, b.DelLabels) {
		return false
	}
	if !a.SetProps.Equal(b.SetProps) {
		return false
	}
	return reflect.DeepEqual(a.DelProps, b.DelProps)
}

func TestUpdateRoundTripAllKinds(t *testing.T) {
	c := newCodec()
	props := model.Properties{
		"i":  model.IntValue(-42),
		"f":  model.FloatValue(2.75),
		"b":  model.BoolValue(true),
		"s":  model.StringValue("neo"),
		"ia": model.IntArrayValue([]int64{1, -2, 3}),
		"fa": model.FloatArrayValue([]float64{0.5, -1.25}),
		"sa": model.StringArrayValue([]string{"x", "y"}),
	}
	cases := []model.Update{
		model.AddNode(1, 7, []string{"Person", "Author"}, props),
		model.DeleteNode(2, 7),
		model.UpdateNode(3, 7, []string{"New"}, []string{"Author"}, model.Properties{"k": model.IntValue(9)}, []string{"i"}),
		model.AddRel(4, 11, 7, 8, "KNOWS", props),
		model.DeleteRel(5, 11, 7, 8),
		model.UpdateRel(6, 11, 7, 8, model.Properties{"w": model.FloatValue(1.5)}, []string{"f"}),
	}
	for _, u := range cases {
		got := rtUpdate(t, c, u)
		if !updatesEqual(u, got) {
			t.Errorf("round trip mismatch:\n in: %+v\nout: %+v", u, got)
		}
	}
}

func TestUpdateRoundTripEmptyPayloads(t *testing.T) {
	c := newCodec()
	u := model.AddNode(1, 1, nil, nil)
	got := rtUpdate(t, c, u)
	if !updatesEqual(u, got) {
		t.Errorf("empty node mismatch: %+v vs %+v", u, got)
	}
	r := model.AddRel(1, 1, 2, 3, "", nil)
	got = rtUpdate(t, c, r)
	if !updatesEqual(r, got) {
		t.Errorf("empty rel mismatch: %+v vs %+v", r, got)
	}
}

func TestDeleteRecordIsSmall(t *testing.T) {
	// Deleted entities require space only for their id and timestamp
	// (plus header); Sec 4.2 footnote 5.
	c := newCodec()
	b, err := c.EncodeUpdate(model.DeleteNode(1000, 123456))
	if err != nil {
		t.Fatal(err)
	}
	if len(b) > 12 {
		t.Errorf("node tombstone is %d bytes, want <= 12", len(b))
	}
}

func TestDecodeUpdateErrors(t *testing.T) {
	c := newCodec()
	if _, err := c.DecodeUpdate(nil); err == nil {
		t.Error("nil record must fail")
	}
	if _, err := c.DecodeUpdate([]byte{0x00}); err == nil {
		t.Error("truncated record must fail")
	}
	if _, err := c.DecodeUpdate([]byte{0x03, 0x01}); err == nil {
		t.Error("unknown entity type must fail")
	}
}

func TestUpdateRoundTripRandom(t *testing.T) {
	c := newCodec()
	rng := rand.New(rand.NewSource(42))
	labels := []string{"A", "B", "C", "D"}
	keys := []string{"p", "q", "r"}
	for i := 0; i < 2000; i++ {
		var u model.Update
		ts := model.Timestamp(rng.Int63n(1 << 40))
		switch rng.Intn(6) {
		case 0:
			u = model.AddNode(ts, model.NodeID(rng.Int63n(1e6)), []string{labels[rng.Intn(4)]},
				model.Properties{keys[rng.Intn(3)]: model.IntValue(rng.Int63())})
		case 1:
			u = model.DeleteNode(ts, model.NodeID(rng.Int63n(1e6)))
		case 2:
			u = model.UpdateNode(ts, model.NodeID(rng.Int63n(1e6)),
				[]string{labels[rng.Intn(4)]}, nil, nil, []string{keys[rng.Intn(3)]})
		case 3:
			u = model.AddRel(ts, model.RelID(rng.Int63n(1e6)), model.NodeID(rng.Int63n(1e6)),
				model.NodeID(rng.Int63n(1e6)), labels[rng.Intn(4)],
				model.Properties{keys[rng.Intn(3)]: model.FloatValue(rng.Float64())})
		case 4:
			u = model.DeleteRel(ts, model.RelID(rng.Int63n(1e6)), 1, 2)
		case 5:
			u = model.UpdateRel(ts, model.RelID(rng.Int63n(1e6)), 1, 2,
				model.Properties{keys[rng.Intn(3)]: model.StringValue("v")}, nil)
		}
		got := rtUpdate(t, c, u)
		if !updatesEqual(u, got) {
			t.Fatalf("random round trip %d mismatch:\n in: %+v\nout: %+v", i, u, got)
		}
	}
}

func TestKeyOrderingMatchesNumericOrder(t *testing.T) {
	// Byte-wise key comparison must match (id, ts) lexicographic order.
	f := func(id1, id2 uint32, ts1, ts2 uint32) bool {
		k1 := KeyNode(model.NodeID(id1), model.Timestamp(ts1))
		k2 := KeyNode(model.NodeID(id2), model.Timestamp(ts2))
		cmp := bytes.Compare(k1, k2)
		var want int
		switch {
		case id1 != id2:
			if id1 < id2 {
				want = -1
			} else {
				want = 1
			}
		case ts1 < ts2:
			want = -1
		case ts1 > ts2:
			want = 1
		}
		return cmp == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNeighKeyGroupsByNodePrefix(t *testing.T) {
	keys := [][]byte{
		KeyNeigh(2, 1, 5),
		KeyNeigh(1, 9, 0),
		KeyNeigh(1, 2, 7),
		KeyNeigh(1, 2, 3),
	}
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
	a0, b0, t0 := ParseKeyNeigh(keys[0])
	if a0 != 1 || b0 != 2 || t0 != 3 {
		t.Errorf("first key = (%d,%d,%d)", a0, b0, t0)
	}
	aLast, _, _ := ParseKeyNeigh(keys[3])
	if aLast != 2 {
		t.Error("node 2 entries must sort after all node 1 entries")
	}
	prefix := KeyNeighPrefix(1)
	if !bytes.HasPrefix(keys[0], prefix) {
		t.Error("prefix scan must match")
	}
}

func TestKeyParseRoundTrip(t *testing.T) {
	id, ts := ParseKeyNode(KeyNode(77, 88))
	if id != 77 || ts != 88 {
		t.Error("node key parse")
	}
	rid, rts := ParseKeyRel(KeyRel(5, model.TSInfinity))
	if rid != 5 || rts != model.TSInfinity {
		t.Error("rel key parse with infinity")
	}
	kts, seq := ParseKeyTS(KeyTS(123, 45))
	if kts != 123 || seq != 45 {
		t.Error("ts key parse")
	}
	r, del := ParseNeighValue(NeighValue(9, true))
	if r != 9 || !del {
		t.Error("neigh value parse")
	}
	r, del = ParseNeighValue(NeighValue(10, false))
	if r != 10 || del {
		t.Error("neigh value parse live")
	}
	if ParseU64Value(U64Value(1<<40)) != 1<<40 {
		t.Error("u64 value parse")
	}
}

func TestTSPrefixBoundsRange(t *testing.T) {
	lo := KeyTSPrefix(100)
	k := KeyTS(100, 0)
	if bytes.Compare(lo, k) > 0 {
		t.Error("prefix must sort <= full key at same ts")
	}
	hi := KeyTSPrefix(101)
	if bytes.Compare(k, hi) >= 0 {
		t.Error("full key at ts must sort < next ts prefix")
	}
}

func TestStringInterningSharesRefs(t *testing.T) {
	c := newCodec()
	u1 := model.AddNode(1, 1, []string{"Person"}, model.Properties{"name": model.StringValue("x")})
	u2 := model.AddNode(2, 2, []string{"Person"}, model.Properties{"name": model.StringValue("y")})
	b1, _ := c.EncodeUpdate(u1)
	b2, _ := c.EncodeUpdate(u2)
	_ = b1
	_ = b2
	// "Person", "name", "x", "y" = 4 interned strings.
	if c.Strings.Len() != 4 {
		t.Errorf("interned %d strings, want 4", c.Strings.Len())
	}
}
