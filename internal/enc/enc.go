// Package enc implements Aion's variable-size temporal record layout
// (Sec 4.2, Fig 3). Records come in two flavours: fully materialized graph
// entities and deltas from the last update. The first byte (the header)
// carries the entity type (node, relationship, or neighbourhood) and state
// (deleted / delta). Strings are replaced by 4-byte references into a string
// store; a label reference reserves its most significant bit to mark
// deletion, and a property reference reserves its top bits for state
// (deleted) and the value's data type.
package enc

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"aion/internal/model"
	"aion/internal/strstore"
)

// EntityType identifies what a record describes.
type EntityType uint8

const (
	// TypeNode is a node record (Id, Time, Labels, Props).
	TypeNode EntityType = iota
	// TypeRel is a relationship record (Id, Time, Src, Tgt, Label, Props).
	TypeRel
	// TypeNeigh is a neighbourhood record (Id, Time, Src, Tgt).
	TypeNeigh
)

// Header bit layout.
const (
	headerTypeMask   = 0b0000_0011
	headerDeletedBit = 0b0000_0100
	headerDeltaBit   = 0b0000_1000
)

// Reference flag layout. A 4-byte string reference keeps the low 28 bits for
// the string id (strstore.MaxRef); label refs use bit 31 for "deleted";
// property refs use bit 31 for "deleted" and bits 30..28 for the value type.
const (
	refDeletedBit = 1 << 31
	refTypeShift  = 28
	refIDMask     = strstore.MaxRef
)

// Codec encodes and decodes temporal records against a shared string store.
type Codec struct {
	Strings *strstore.Store
}

// NewCodec returns a codec over the given string store.
func NewCodec(s *strstore.Store) *Codec { return &Codec{Strings: s} }

func valueTypeTag(k model.ValueKind) (uint32, error) {
	switch k {
	case model.KindInt:
		return 0, nil
	case model.KindFloat:
		return 1, nil
	case model.KindBool:
		return 2, nil
	case model.KindString:
		return 3, nil
	case model.KindIntArray:
		return 4, nil
	case model.KindFloatArray:
		return 5, nil
	case model.KindStringArray:
		return 6, nil
	}
	return 0, fmt.Errorf("enc: unencodable value kind %v", k)
}

func kindFromTag(tag uint32) model.ValueKind {
	switch tag {
	case 0:
		return model.KindInt
	case 1:
		return model.KindFloat
	case 2:
		return model.KindBool
	case 3:
		return model.KindString
	case 4:
		return model.KindIntArray
	case 5:
		return model.KindFloatArray
	case 6:
		return model.KindStringArray
	}
	return model.KindNull
}

func (c *Codec) appendRef(buf []byte, r strstore.Ref, flags uint32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(r)|flags)
	return append(buf, b[:]...)
}

func readRef(b []byte) (id strstore.Ref, flags uint32, rest []byte, err error) {
	if len(b) < 4 {
		return 0, 0, nil, fmt.Errorf("enc: short ref")
	}
	v := binary.BigEndian.Uint32(b)
	return strstore.Ref(v & refIDMask), v &^ refIDMask, b[4:], nil
}

// appendLabels encodes the label set: count, then refs (deleted labels get
// the deleted bit).
func (c *Codec) appendLabels(buf []byte, added, removed []string) ([]byte, error) {
	buf = binary.AppendUvarint(buf, uint64(len(added)+len(removed)))
	for _, l := range added {
		r, err := c.Strings.Intern(l)
		if err != nil {
			return nil, err
		}
		buf = c.appendRef(buf, r, 0)
	}
	for _, l := range removed {
		r, err := c.Strings.Intern(l)
		if err != nil {
			return nil, err
		}
		buf = c.appendRef(buf, r, refDeletedBit)
	}
	return buf, nil
}

func (c *Codec) readLabels(b []byte) (added, removed []string, rest []byte, err error) {
	n, w := binary.Uvarint(b)
	if w <= 0 {
		return nil, nil, nil, fmt.Errorf("enc: bad label count")
	}
	b = b[w:]
	for i := uint64(0); i < n; i++ {
		var id strstore.Ref
		var flags uint32
		id, flags, b, err = readRef(b)
		if err != nil {
			return nil, nil, nil, err
		}
		s, err := c.Strings.Lookup(id)
		if err != nil {
			return nil, nil, nil, err
		}
		if flags&refDeletedBit != 0 {
			removed = append(removed, s)
		} else {
			added = append(added, s)
		}
	}
	return added, removed, b, nil
}

func (c *Codec) appendValue(buf []byte, v model.Value) ([]byte, error) {
	switch v.Kind() {
	case model.KindInt:
		return binary.AppendVarint(buf, v.Int()), nil
	case model.KindFloat:
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], math.Float64bits(v.Float()))
		return append(buf, b[:]...), nil
	case model.KindBool:
		if v.Bool() {
			return append(buf, 1), nil
		}
		return append(buf, 0), nil
	case model.KindString:
		r, err := c.Strings.Intern(v.Str())
		if err != nil {
			return nil, err
		}
		return c.appendRef(buf, r, 0), nil
	case model.KindIntArray:
		a := v.IntArray()
		buf = binary.AppendUvarint(buf, uint64(len(a)))
		for _, x := range a {
			buf = binary.AppendVarint(buf, x)
		}
		return buf, nil
	case model.KindFloatArray:
		a := v.FloatArray()
		buf = binary.AppendUvarint(buf, uint64(len(a)))
		for _, x := range a {
			var b [8]byte
			binary.BigEndian.PutUint64(b[:], math.Float64bits(x))
			buf = append(buf, b[:]...)
		}
		return buf, nil
	case model.KindStringArray:
		a := v.StringArray()
		buf = binary.AppendUvarint(buf, uint64(len(a)))
		for _, x := range a {
			r, err := c.Strings.Intern(x)
			if err != nil {
				return nil, err
			}
			buf = c.appendRef(buf, r, 0)
		}
		return buf, nil
	}
	return nil, fmt.Errorf("enc: unencodable value kind %v", v.Kind())
}

func (c *Codec) readValue(b []byte, k model.ValueKind) (model.Value, []byte, error) {
	switch k {
	case model.KindInt:
		x, w := binary.Varint(b)
		if w <= 0 {
			return model.Value{}, nil, fmt.Errorf("enc: bad int")
		}
		return model.IntValue(x), b[w:], nil
	case model.KindFloat:
		if len(b) < 8 {
			return model.Value{}, nil, fmt.Errorf("enc: short float")
		}
		return model.FloatValue(math.Float64frombits(binary.BigEndian.Uint64(b))), b[8:], nil
	case model.KindBool:
		if len(b) < 1 {
			return model.Value{}, nil, fmt.Errorf("enc: short bool")
		}
		return model.BoolValue(b[0] != 0), b[1:], nil
	case model.KindString:
		id, _, rest, err := readRef(b)
		if err != nil {
			return model.Value{}, nil, err
		}
		s, err := c.Strings.Lookup(id)
		if err != nil {
			return model.Value{}, nil, err
		}
		return model.StringValue(s), rest, nil
	case model.KindIntArray:
		n, w := binary.Uvarint(b)
		if w <= 0 || n > uint64(len(b)) { // each element needs >= 1 byte
			return model.Value{}, nil, fmt.Errorf("enc: bad array len")
		}
		b = b[w:]
		a := make([]int64, n)
		for i := range a {
			x, w := binary.Varint(b)
			if w <= 0 {
				return model.Value{}, nil, fmt.Errorf("enc: bad int elem")
			}
			a[i], b = x, b[w:]
		}
		return model.IntArrayValue(a), b, nil
	case model.KindFloatArray:
		n, w := binary.Uvarint(b)
		if w <= 0 || n > uint64(len(b))/8 { // overflow-safe bound
			return model.Value{}, nil, fmt.Errorf("enc: bad array len")
		}
		b = b[w:]
		a := make([]float64, n)
		for i := range a {
			if len(b) < 8 {
				return model.Value{}, nil, fmt.Errorf("enc: short float elem")
			}
			a[i] = math.Float64frombits(binary.BigEndian.Uint64(b))
			b = b[8:]
		}
		return model.FloatArrayValue(a), b, nil
	case model.KindStringArray:
		n, w := binary.Uvarint(b)
		if w <= 0 || n > uint64(len(b))/4 { // each ref is 4 bytes; overflow-safe
			return model.Value{}, nil, fmt.Errorf("enc: bad array len")
		}
		b = b[w:]
		a := make([]string, n)
		for i := range a {
			id, _, rest, err := readRef(b)
			if err != nil {
				return model.Value{}, nil, err
			}
			s, err := c.Strings.Lookup(id)
			if err != nil {
				return model.Value{}, nil, err
			}
			a[i], b = s, rest
		}
		return model.StringArrayValue(a), b, nil
	}
	return model.Value{}, nil, fmt.Errorf("enc: undecodable kind %v", k)
}

// appendProps encodes set and deleted properties: count, then per property a
// flagged key reference (deleted bit, type tag) followed by the value
// payload (omitted for deletions). Keys are emitted in sorted order so the
// same logical update always encodes to the same bytes — the snapshot
// writers rely on this for the sequential/parallel byte-identity guarantee.
func (c *Codec) appendProps(buf []byte, set model.Properties, del []string) ([]byte, error) {
	buf = binary.AppendUvarint(buf, uint64(len(set)+len(del)))
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := set[k]
		tag, err := valueTypeTag(v.Kind())
		if err != nil {
			return nil, err
		}
		r, err := c.Strings.Intern(k)
		if err != nil {
			return nil, err
		}
		buf = c.appendRef(buf, r, tag<<refTypeShift)
		buf, err = c.appendValue(buf, v)
		if err != nil {
			return nil, err
		}
	}
	for _, k := range del {
		r, err := c.Strings.Intern(k)
		if err != nil {
			return nil, err
		}
		buf = c.appendRef(buf, r, refDeletedBit)
	}
	return buf, nil
}

func (c *Codec) readProps(b []byte) (set model.Properties, del []string, rest []byte, err error) {
	n, w := binary.Uvarint(b)
	if w <= 0 {
		return nil, nil, nil, fmt.Errorf("enc: bad prop count")
	}
	b = b[w:]
	for i := uint64(0); i < n; i++ {
		var id strstore.Ref
		var flags uint32
		id, flags, b, err = readRef(b)
		if err != nil {
			return nil, nil, nil, err
		}
		key, err := c.Strings.Lookup(id)
		if err != nil {
			return nil, nil, nil, err
		}
		if flags&refDeletedBit != 0 {
			del = append(del, key)
			continue
		}
		kind := kindFromTag((flags >> refTypeShift) & 0b111)
		var v model.Value
		v, b, err = c.readValue(b, kind)
		if err != nil {
			return nil, nil, nil, err
		}
		if set == nil {
			set = make(model.Properties)
		}
		set[key] = v
	}
	return set, del, b, nil
}
