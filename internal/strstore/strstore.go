// Package strstore implements the string store of Sec 4.2: instead of
// storing label and property-key strings inline in disk records, records
// hold a 4-byte reference into an append-only interned string table,
// substantially lowering record sizes for repeated strings.
package strstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// Ref is a 4-byte reference to an interned string. Per the paper the most
// significant bits of a reference are reserved for state flags by callers
// (e.g. label present/deleted, property type tags), so the store itself only
// hands out refs that fit in the low 28 bits.
type Ref uint32

// MaxRef bounds the id space, leaving the top bits free for caller flags.
const MaxRef = 1<<28 - 1

// Store is an append-only interned string table. It is safe for concurrent
// use; the read paths (Lookup, and Intern of an already-known string) are
// lock-free so the TimeStore's parallel encode/decode workers do not
// serialize on the table. When constructed with a backing file, every new
// string is appended durably (length-prefixed) so the table can be reloaded.
type Store struct {
	mu   sync.Mutex   // serializes interning of new strings and file state
	byID atomic.Value // []string; append-only, republished on growth
	ids  sync.Map     // string -> Ref; written once per string
	w    *bufio.Writer
	f    *os.File
}

// NewMem creates an in-memory store with no persistence.
func NewMem() *Store {
	s := &Store{}
	s.byID.Store([]string(nil))
	return s
}

// Open creates or reloads a persistent store backed by the given file.
func Open(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("strstore: open: %w", err)
	}
	s := &Store{f: f}
	r := bufio.NewReader(f)
	var lenBuf [4]byte
	var byID []string
	for {
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			if err == io.EOF {
				break
			}
			f.Close()
			return nil, fmt.Errorf("strstore: reload: %w", err)
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			f.Close()
			return nil, fmt.Errorf("strstore: reload body: %w", err)
		}
		str := string(b)
		s.ids.Store(str, Ref(len(byID)))
		byID = append(byID, str)
	}
	s.byID.Store(byID)
	s.w = bufio.NewWriter(f)
	return s, nil
}

func (st *Store) table() []string {
	t, _ := st.byID.Load().([]string)
	return t
}

// Intern returns the reference for s, assigning and persisting a new one if
// the string has not been seen before. Known strings resolve without
// taking a lock.
func (st *Store) Intern(s string) (Ref, error) {
	if id, ok := st.ids.Load(s); ok {
		return id.(Ref), nil
	}

	st.mu.Lock()
	defer st.mu.Unlock()
	if id, ok := st.ids.Load(s); ok {
		return id.(Ref), nil
	}
	cur := st.table()
	if len(cur) >= MaxRef {
		return 0, fmt.Errorf("strstore: table full (%d strings)", len(cur))
	}
	id := Ref(len(cur))
	if st.w != nil {
		var lenBuf [4]byte
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(s)))
		if _, err := st.w.Write(lenBuf[:]); err != nil {
			return 0, fmt.Errorf("strstore: append: %w", err)
		}
		if _, err := st.w.WriteString(s); err != nil {
			return 0, fmt.Errorf("strstore: append: %w", err)
		}
	}
	// Appends are serialized under mu and concurrent readers never index
	// past the length of the header they loaded, so appending in place
	// (when capacity allows) and republishing the longer header is safe.
	st.byID.Store(append(cur, s))
	st.ids.Store(s, id)
	return id, nil
}

// MustIntern is Intern for in-memory stores where appends cannot fail; it
// panics on error.
func (st *Store) MustIntern(s string) Ref {
	r, err := st.Intern(s)
	if err != nil {
		panic(err)
	}
	return r
}

// Lookup resolves a reference back to its string without locking.
func (st *Store) Lookup(r Ref) (string, error) {
	t := st.table()
	if int(r) >= len(t) {
		return "", fmt.Errorf("strstore: dangling ref %d (table size %d)", r, len(t))
	}
	return t[r], nil
}

// Len returns the number of interned strings.
func (st *Store) Len() int {
	return len(st.table())
}

// Flush writes buffered appends to the backing file.
func (st *Store) Flush() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.w == nil {
		return nil
	}
	return st.w.Flush()
}

// Close flushes and closes the backing file, if any.
func (st *Store) Close() error {
	if err := st.Flush(); err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.f == nil {
		return nil
	}
	err := st.f.Close()
	st.f, st.w = nil, nil
	return err
}

// DiskBytes reports the current byte size of the backing file (0 for
// in-memory stores); used by the Fig 10 storage accounting.
func (st *Store) DiskBytes() int64 {
	var n int64
	for _, s := range st.table() {
		n += 4 + int64(len(s))
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.f == nil {
		return 0
	}
	return n
}
