// Package strstore implements the string store of Sec 4.2: instead of
// storing label and property-key strings inline in disk records, records
// hold a 4-byte reference into an append-only interned string table,
// substantially lowering record sizes for repeated strings.
package strstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"
)

// Ref is a 4-byte reference to an interned string. Per the paper the most
// significant bits of a reference are reserved for state flags by callers
// (e.g. label present/deleted, property type tags), so the store itself only
// hands out refs that fit in the low 28 bits.
type Ref uint32

// MaxRef bounds the id space, leaving the top bits free for caller flags.
const MaxRef = 1<<28 - 1

// Store is an append-only interned string table. It is safe for concurrent
// use. When constructed with a backing file, every new string is appended
// durably (length-prefixed) so the table can be reloaded.
type Store struct {
	mu   sync.RWMutex
	byID []string
	ids  map[string]Ref
	w    *bufio.Writer
	f    *os.File
}

// NewMem creates an in-memory store with no persistence.
func NewMem() *Store {
	return &Store{ids: make(map[string]Ref)}
}

// Open creates or reloads a persistent store backed by the given file.
func Open(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("strstore: open: %w", err)
	}
	s := &Store{ids: make(map[string]Ref), f: f}
	r := bufio.NewReader(f)
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			if err == io.EOF {
				break
			}
			f.Close()
			return nil, fmt.Errorf("strstore: reload: %w", err)
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			f.Close()
			return nil, fmt.Errorf("strstore: reload body: %w", err)
		}
		str := string(b)
		s.ids[str] = Ref(len(s.byID))
		s.byID = append(s.byID, str)
	}
	s.w = bufio.NewWriter(f)
	return s, nil
}

// Intern returns the reference for s, assigning and persisting a new one if
// the string has not been seen before.
func (st *Store) Intern(s string) (Ref, error) {
	st.mu.RLock()
	if id, ok := st.ids[s]; ok {
		st.mu.RUnlock()
		return id, nil
	}
	st.mu.RUnlock()

	st.mu.Lock()
	defer st.mu.Unlock()
	if id, ok := st.ids[s]; ok {
		return id, nil
	}
	if len(st.byID) >= MaxRef {
		return 0, fmt.Errorf("strstore: table full (%d strings)", len(st.byID))
	}
	id := Ref(len(st.byID))
	if st.w != nil {
		var lenBuf [4]byte
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(s)))
		if _, err := st.w.Write(lenBuf[:]); err != nil {
			return 0, fmt.Errorf("strstore: append: %w", err)
		}
		if _, err := st.w.WriteString(s); err != nil {
			return 0, fmt.Errorf("strstore: append: %w", err)
		}
	}
	st.ids[s] = id
	st.byID = append(st.byID, s)
	return id, nil
}

// MustIntern is Intern for in-memory stores where appends cannot fail; it
// panics on error.
func (st *Store) MustIntern(s string) Ref {
	r, err := st.Intern(s)
	if err != nil {
		panic(err)
	}
	return r
}

// Lookup resolves a reference back to its string.
func (st *Store) Lookup(r Ref) (string, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if int(r) >= len(st.byID) {
		return "", fmt.Errorf("strstore: dangling ref %d (table size %d)", r, len(st.byID))
	}
	return st.byID[r], nil
}

// Len returns the number of interned strings.
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.byID)
}

// Flush writes buffered appends to the backing file.
func (st *Store) Flush() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.w == nil {
		return nil
	}
	return st.w.Flush()
}

// Close flushes and closes the backing file, if any.
func (st *Store) Close() error {
	if err := st.Flush(); err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.f == nil {
		return nil
	}
	err := st.f.Close()
	st.f, st.w = nil, nil
	return err
}

// DiskBytes reports the current byte size of the backing file (0 for
// in-memory stores); used by the Fig 10 storage accounting.
func (st *Store) DiskBytes() int64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var n int64
	for _, s := range st.byID {
		n += 4 + int64(len(s))
	}
	if st.f == nil {
		return 0
	}
	return n
}
