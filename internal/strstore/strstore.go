// Package strstore implements the string store of Sec 4.2: instead of
// storing label and property-key strings inline in disk records, records
// hold a 4-byte reference into an append-only interned string table,
// substantially lowering record sizes for repeated strings.
package strstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"aion/internal/vfs"
)

// Ref is a 4-byte reference to an interned string. Per the paper the most
// significant bits of a reference are reserved for state flags by callers
// (e.g. label present/deleted, property type tags), so the store itself only
// hands out refs that fit in the low 28 bits.
type Ref uint32

// MaxRef bounds the id space, leaving the top bits free for caller flags.
const MaxRef = 1<<28 - 1

// Store is an append-only interned string table. It is safe for concurrent
// use; the read paths (Lookup, and Intern of an already-known string) are
// lock-free so the TimeStore's parallel encode/decode workers do not
// serialize on the table. When constructed with a backing file, every new
// string is appended durably (length-prefixed) so the table can be reloaded.
type Store struct {
	mu       sync.Mutex   // serializes interning of new strings and file state
	byID     atomic.Value // []string; append-only, republished on growth
	ids      sync.Map     // string -> Ref; written once per string
	w        *bufio.Writer
	f        vfs.File
	size     int64 // logical file size including buffered appends
	synced   int64 // extent covered by the last successful Sync
	dirty    bool  // unsynced appends outstanding
	repaired int64 // torn-tail bytes truncated by Open
	failed   error // sticky: first append/sync error; later writes fail-stop
}

// NewMem creates an in-memory store with no persistence.
func NewMem() *Store {
	s := &Store{}
	s.byID.Store([]string(nil))
	return s
}

// Open creates or reloads a persistent store backed by the given file.
func Open(path string) (*Store, error) { return OpenFS(vfs.OS, path) }

// OpenFS is Open on an explicit filesystem. Reloading validates the table
// as it goes: a record whose length prefix or body runs past the end of
// the file is the torn tail of a crash mid-append, and is truncated away.
// References are positional, so the table can only be cut at the end —
// which is exactly what a crash can produce, since appends are sequential.
func OpenFS(fs vfs.FS, path string) (*Store, error) {
	f, err := fs.OpenFile(path)
	if err != nil {
		return nil, fmt.Errorf("strstore: open: %w", err)
	}
	size, err := f.Size()
	if err != nil {
		return nil, errors.Join(fmt.Errorf("strstore: stat: %w", err), f.Close())
	}
	s := &Store{f: f}
	r := bufio.NewReader(io.NewSectionReader(f, 0, size))
	var lenBuf [4]byte
	var byID []string
	var off int64
	for off+4 <= size {
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			return nil, errors.Join(fmt.Errorf("strstore: reload: %w", err), f.Close())
		}
		n := int64(binary.LittleEndian.Uint32(lenBuf[:]))
		if off+4+n > size {
			break // torn body: a crash cut the append short
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, errors.Join(fmt.Errorf("strstore: reload body: %w", err), f.Close())
		}
		str := string(b)
		s.ids.Store(str, Ref(len(byID)))
		byID = append(byID, str)
		off += 4 + n
	}
	if off < size {
		if err := f.Truncate(off); err != nil {
			return nil, errors.Join(fmt.Errorf("strstore: tail repair truncate: %w", err), f.Close())
		}
		if err := f.Sync(); err != nil {
			return nil, errors.Join(fmt.Errorf("strstore: tail repair sync: %w", err), f.Close())
		}
		s.repaired = size - off
	}
	s.byID.Store(byID)
	s.w = bufio.NewWriter(&vfs.SeqWriter{F: f, Off: off})
	// Whatever survived open is the durable baseline.
	s.size, s.synced = off, off
	return s, nil
}

// RepairedBytes reports how many torn-tail bytes Open discarded.
func (st *Store) RepairedBytes() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.repaired
}

func (st *Store) table() []string {
	t, _ := st.byID.Load().([]string)
	return t
}

// Intern returns the reference for s, assigning and persisting a new one if
// the string has not been seen before. Known strings resolve without
// taking a lock.
func (st *Store) Intern(s string) (Ref, error) {
	if id, ok := st.ids.Load(s); ok {
		return id.(Ref), nil
	}

	st.mu.Lock()
	defer st.mu.Unlock()
	if id, ok := st.ids.Load(s); ok {
		return id.(Ref), nil
	}
	if st.failed != nil {
		return 0, fmt.Errorf("strstore: store failed: %w", st.failed)
	}
	cur := st.table()
	if len(cur) >= MaxRef {
		return 0, fmt.Errorf("strstore: table full (%d strings)", len(cur))
	}
	id := Ref(len(cur))
	if st.w != nil {
		var lenBuf [4]byte
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(s)))
		if _, err := st.w.Write(lenBuf[:]); err != nil {
			st.failed = err
			return 0, fmt.Errorf("strstore: append: %w", err)
		}
		if _, err := st.w.WriteString(s); err != nil {
			st.failed = err
			return 0, fmt.Errorf("strstore: append: %w", err)
		}
		st.size += 4 + int64(len(s))
		st.dirty = true
	}
	// Appends are serialized under mu and concurrent readers never index
	// past the length of the header they loaded, so appending in place
	// (when capacity allows) and republishing the longer header is safe.
	st.byID.Store(append(cur, s))
	st.ids.Store(s, id)
	return id, nil
}

// MustIntern is Intern for in-memory stores where appends cannot fail; it
// panics on error.
func (st *Store) MustIntern(s string) Ref {
	r, err := st.Intern(s)
	if err != nil {
		panic(err)
	}
	return r
}

// Lookup resolves a reference back to its string without locking.
func (st *Store) Lookup(r Ref) (string, error) {
	t := st.table()
	if int(r) >= len(t) {
		return "", fmt.Errorf("strstore: dangling ref %d (table size %d)", r, len(t))
	}
	return t[r], nil
}

// Len returns the number of interned strings.
func (st *Store) Len() int {
	return len(st.table())
}

// Flush writes buffered appends to the backing file. After any append or
// sync failure the store fails stop (see Sync).
func (st *Store) Flush() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.flushLocked()
}

func (st *Store) flushLocked() error {
	if st.w == nil {
		return nil
	}
	if st.failed != nil {
		return fmt.Errorf("strstore: store failed: %w", st.failed)
	}
	if err := st.w.Flush(); err != nil {
		st.failed = err
		return fmt.Errorf("strstore: flush: %w", err)
	}
	return nil
}

// Sync flushes buffered appends and fsyncs the backing file so every
// interned string is durable. Callers must Sync the string table before
// syncing any log whose records hold refs into it — refs are positional,
// so a log record that outlives its string would dangle after recovery.
// A no-op when nothing was appended since the last Sync. A failed sync
// poisons the store: the kernel may have dropped the dirty pages, so later
// appends would build on data that never became durable.
func (st *Store) Sync() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.f == nil || !st.dirty {
		if st.failed != nil {
			return fmt.Errorf("strstore: store failed: %w", st.failed)
		}
		return nil
	}
	if err := st.flushLocked(); err != nil {
		return err
	}
	//aionlint:ignore lockio appends must not interleave with the fsync that orders the sticky fail-stop error; lookups are lock-free via the atomic table so only writers wait
	if err := st.f.Sync(); err != nil {
		st.failed = err
		return fmt.Errorf("strstore: sync: %w", err)
	}
	st.synced = st.size
	st.dirty = false
	return nil
}

// SyncedSize returns the byte extent of the backing file covered by the
// last successful Sync — the record-aligned prefix guaranteed to survive a
// crash. Replication ships only bytes below this mark.
func (st *Store) SyncedSize() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.synced
}

// ReadRange returns the exact bytes [from, to) of the backing file. The
// range must lie within the synced extent; unlike ReadRaw it is not
// record-aligned — tail-CRC verification compares positional bytes across
// nodes, so alignment is irrelevant.
func (st *Store) ReadRange(from, to int64) ([]byte, error) {
	st.mu.Lock()
	synced := st.synced
	f := st.f
	st.mu.Unlock()
	if f == nil {
		return nil, errors.New("strstore: in-memory store has no raw bytes")
	}
	if from < 0 || from > to || to > synced {
		return nil, fmt.Errorf("strstore: range [%d,%d) outside durable extent %d", from, to, synced)
	}
	buf := make([]byte, to-from)
	if to > from {
		if _, err := f.ReadAt(buf, from); err != nil {
			return nil, fmt.Errorf("strstore: range read at %d: %w", from, err)
		}
	}
	return buf, nil
}

// ReadRaw returns up to max bytes of whole records starting at byte offset
// off in the backing file. The returned chunk always ends on a record
// boundary; a single record larger than max is returned whole so a reader
// always makes progress. Only the synced region may be read — the bytes a
// replica ships must already be durable on the primary.
func (st *Store) ReadRaw(off int64, max int) ([]byte, error) {
	st.mu.Lock()
	synced := st.synced
	f := st.f
	st.mu.Unlock()
	if f == nil {
		return nil, errors.New("strstore: in-memory store has no raw bytes")
	}
	if off < 0 || off > synced {
		return nil, fmt.Errorf("strstore: raw offset %d out of durable range (synced %d)", off, synced)
	}
	if off == synced {
		return nil, nil
	}
	if max < 4 {
		max = 4
	}
	n := int64(max)
	if n > synced-off {
		n = synced - off
	}
	buf := make([]byte, n)
	if _, err := f.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("strstore: raw read at %d: %w", off, err)
	}
	// Trim to the last whole record in the chunk. The synced region is
	// record-aligned, so a cut can only fall mid-record when max did.
	pos := int64(0)
	for pos+4 <= n {
		rl := int64(binary.LittleEndian.Uint32(buf[pos:]))
		if pos+4+rl > n {
			break
		}
		pos += 4 + rl
	}
	if pos == 0 {
		// First record alone exceeds max: grow to return it whole.
		rl := int64(binary.LittleEndian.Uint32(buf))
		if off+4+rl > synced {
			return nil, fmt.Errorf("strstore: record at %d runs past durable extent %d", off, synced)
		}
		whole := make([]byte, 4+rl)
		if _, err := f.ReadAt(whole, off); err != nil {
			return nil, fmt.Errorf("strstore: raw read at %d: %w", off, err)
		}
		return whole, nil
	}
	return buf[:pos], nil
}

// AppendRaw ingests a chunk of whole records shipped from another store
// (replication): the bytes are appended verbatim to the backing file and
// each record's string is added to the in-memory table, preserving the
// positional references the shipped log records carry. The chunk must be
// exactly record-aligned; a misaligned chunk is rejected without touching
// the store. Durability follows the store's usual contract: call Sync
// before relying on the appended records.
func (st *Store) AppendRaw(chunk []byte) error {
	if len(chunk) == 0 {
		return nil
	}
	var recs []string
	for pos := 0; pos < len(chunk); {
		if pos+4 > len(chunk) {
			return fmt.Errorf("strstore: raw chunk cut mid-header at %d", pos)
		}
		rl := int(binary.LittleEndian.Uint32(chunk[pos:]))
		if pos+4+rl > len(chunk) {
			return fmt.Errorf("strstore: raw chunk cut mid-record at %d", pos)
		}
		recs = append(recs, string(chunk[pos+4:pos+4+rl]))
		pos += 4 + rl
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.failed != nil {
		return fmt.Errorf("strstore: store failed: %w", st.failed)
	}
	cur := st.table()
	if len(cur)+len(recs) > MaxRef {
		return fmt.Errorf("strstore: table full (%d strings)", len(cur))
	}
	for _, s := range recs {
		if _, dup := st.ids.Load(s); dup {
			return fmt.Errorf("strstore: raw chunk re-interns %q; stream diverged", s)
		}
	}
	if st.w != nil {
		if _, err := st.w.Write(chunk); err != nil {
			st.failed = err
			return fmt.Errorf("strstore: raw append: %w", err)
		}
		st.size += int64(len(chunk))
		st.dirty = true
	}
	for _, s := range recs {
		st.ids.Store(s, Ref(len(cur)))
		cur = append(cur, s)
	}
	st.byID.Store(cur)
	return nil
}

// Close flushes and closes the backing file, if any.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.f == nil {
		return nil
	}
	ferr := st.flushLocked()
	if ferr == nil && st.dirty {
		//aionlint:ignore lockio final fsync of a store being torn down; interning is over once Close holds the write lock
		if err := st.f.Sync(); err != nil {
			ferr = fmt.Errorf("strstore: sync: %w", err)
		} else {
			st.synced = st.size
		}
	}
	cerr := st.f.Close()
	st.f, st.w = nil, nil
	if ferr != nil {
		return ferr
	}
	return cerr
}

// DiskBytes reports the current byte size of the backing file (0 for
// in-memory stores); used by the Fig 10 storage accounting.
func (st *Store) DiskBytes() int64 {
	var n int64
	for _, s := range st.table() {
		n += 4 + int64(len(s))
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.f == nil {
		return 0
	}
	return n
}
