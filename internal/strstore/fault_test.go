package strstore

import (
	"errors"
	"fmt"
	"testing"

	"aion/internal/vfs"
)

// TestOpenRepairsTornTail: a crash mid-append leaves a partial
// length-prefixed record; Open truncates it and the store reloads the
// intact prefix, accepts new interns, and persists them.
func TestOpenRepairsTornTail(t *testing.T) {
	fs := vfs.NewFaultFS()
	s, err := OpenFS(fs, "d/strings.db")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Intern(fmt.Sprintf("label-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	// Torn append: length prefix claims 10 bytes but only 3 follow, then
	// crash without sync... except FaultFS discards unsynced bytes, so
	// write the torn bytes and sync them to model a torn-but-synced tail
	// (a real fsync can persist a partial append before power loss).
	f, err := fs.OpenFile("d/strings.db")
	if err != nil {
		t.Fatal(err)
	}
	size, _ := f.Size()
	f.WriteAt([]byte{10, 0, 0, 0, 'x', 'y', 'z'}, size)
	f.Sync()
	fs.Crash()

	s2, err := OpenFS(fs, "d/strings.db")
	if err != nil {
		t.Fatalf("open must repair the torn tail, got %v", err)
	}
	if s2.RepairedBytes() != 7 {
		t.Errorf("repaired %d bytes, want 7", s2.RepairedBytes())
	}
	if s2.Len() != 5 {
		t.Fatalf("reloaded %d strings, want 5", s2.Len())
	}
	for i := 0; i < 5; i++ {
		want := fmt.Sprintf("label-%d", i)
		got, err := s2.Lookup(Ref(i))
		if err != nil || got != want {
			t.Errorf("ref %d = %q %v, want %q", i, got, err, want)
		}
	}
	// The repaired store accepts and persists new strings.
	r, err := s2.Intern("label-5")
	if err != nil {
		t.Fatal(err)
	}
	if r != 5 {
		t.Errorf("new ref = %d, want 5 (refs are positional)", r)
	}
	if err := s2.Sync(); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	s3, err := OpenFS(fs, "d/strings.db")
	if err != nil {
		t.Fatal(err)
	}
	if s3.Len() != 6 {
		t.Errorf("after repair+append+sync reloaded %d strings, want 6", s3.Len())
	}
}

// TestSyncFailStop: an injected fsync failure surfaces from Sync, and the
// store refuses further interns and syncs.
func TestSyncFailStop(t *testing.T) {
	fs := vfs.NewFaultFS()
	s, err := OpenFS(fs, "d/strings.db")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Intern("a"); err != nil {
		t.Fatal(err)
	}
	// Sync = bufio flush (one write) + fsync; fail the fsync.
	fs.SetFailAfter(fs.Ops() + 2)
	if err := s.Sync(); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("sync must surface the injected error, got %v", err)
	}
	fs.SetFailAfter(0)
	if _, err := s.Intern("b"); err == nil {
		t.Error("intern of a new string after failed sync must fail-stop")
	}
	if err := s.Sync(); err == nil {
		t.Error("sync after failed sync must fail-stop")
	}
	// Already-interned strings still resolve (read path unaffected).
	if r, err := s.Intern("a"); err != nil || r != 0 {
		t.Errorf("known string must still resolve: %d %v", r, err)
	}
}

// TestSyncSkipsWhenClean: Sync is a no-op with no outstanding appends (the
// per-commit hot path relies on this).
func TestSyncSkipsWhenClean(t *testing.T) {
	fs := vfs.NewFaultFS()
	s, err := OpenFS(fs, "d/strings.db")
	if err != nil {
		t.Fatal(err)
	}
	s.Intern("a")
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	before := fs.Ops()
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if fs.Ops() != before {
		t.Errorf("clean sync performed %d ops, want 0", fs.Ops()-before)
	}
}
