package strstore

import (
	"fmt"
	"path/filepath"
	"testing"
)

func TestInternDedup(t *testing.T) {
	s := NewMem()
	a, _ := s.Intern("hello")
	b, _ := s.Intern("world")
	c, _ := s.Intern("hello")
	if a == b {
		t.Error("distinct strings must get distinct refs")
	}
	if a != c {
		t.Error("repeated Intern must return the same ref")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
}

func TestLookupRoundTrip(t *testing.T) {
	s := NewMem()
	words := []string{"", "a", "label", "a longer string with spaces", "ünïcode"}
	refs := make([]Ref, len(words))
	for i, w := range words {
		refs[i] = s.MustIntern(w)
	}
	for i, r := range refs {
		got, err := s.Lookup(r)
		if err != nil {
			t.Fatal(err)
		}
		if got != words[i] {
			t.Errorf("Lookup(%d) = %q, want %q", r, got, words[i])
		}
	}
}

func TestLookupDangling(t *testing.T) {
	s := NewMem()
	if _, err := s.Lookup(99); err == nil {
		t.Error("dangling ref must error")
	}
}

func TestPersistenceReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "strings.db")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	r1 := s.MustIntern("alpha")
	r2 := s.MustIntern("beta")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got, _ := s2.Lookup(r1); got != "alpha" {
		t.Errorf("reloaded ref1 = %q", got)
	}
	if got, _ := s2.Lookup(r2); got != "beta" {
		t.Errorf("reloaded ref2 = %q", got)
	}
	// Interning an existing string after reload returns the old ref.
	if r := s2.MustIntern("alpha"); r != r1 {
		t.Errorf("reloaded intern = %d, want %d", r, r1)
	}
	// New strings keep extending the table.
	r3 := s2.MustIntern("gamma")
	if r3 != r2+1 {
		t.Errorf("new ref = %d, want %d", r3, r2+1)
	}
	if s2.DiskBytes() <= 0 {
		t.Error("persistent store must report disk bytes")
	}
}

func TestConcurrentIntern(t *testing.T) {
	s := NewMem()
	done := make(chan bool)
	words := []string{"a", "b", "c", "d", "e"}
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 1000; i++ {
				s.MustIntern(words[i%len(words)])
			}
			done <- true
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if s.Len() != len(words) {
		t.Errorf("Len = %d, want %d", s.Len(), len(words))
	}
}

// TestConcurrentInternAndLookup exercises the lock-free read paths against
// a writer interning a stream of fresh strings (run with -race).
func TestConcurrentInternAndLookup(t *testing.T) {
	s := NewMem()
	const n = 2000
	done := make(chan bool)
	go func() {
		for i := 0; i < n; i++ {
			s.MustIntern(fmt.Sprintf("str-%d", i))
		}
		done <- true
	}()
	for g := 0; g < 4; g++ {
		go func() {
			for i := 0; i < n; i++ {
				if l := s.Len(); l > 0 {
					got, err := s.Lookup(Ref(l - 1))
					if err != nil || got == "" {
						t.Errorf("lookup of published ref failed: %q %v", got, err)
						break
					}
				}
				s.MustIntern("shared")
			}
			done <- true
		}()
	}
	for g := 0; g < 5; g++ {
		<-done
	}
	for i := 0; i < n; i++ {
		w := fmt.Sprintf("str-%d", i)
		r := s.MustIntern(w)
		if got, _ := s.Lookup(r); got != w {
			t.Fatalf("ref %d resolves to %q, want %q", r, got, w)
		}
	}
}
