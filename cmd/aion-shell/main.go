// Command aion-shell is an interactive temporal-Cypher REPL. It either
// embeds a local store (-dir) or connects to an aion-server over Bolt
// (-addr), and can run a statement file non-interactively (-f).
//
// Usage:
//
//	aion-shell                       # embedded, temp storage
//	aion-shell -dir ./mygraph        # embedded, persistent
//	aion-shell -addr 127.0.0.1:7687  # remote over Bolt
//	aion-shell -f load.cypher        # scripted (one statement per line)
//
// Example session:
//
//	> CREATE (a:Person {name: 'ada'})-[:KNOWS]->(b:Person {name: 'bob'})
//	> MATCH (n:Person) RETURN n.name
//	> USE GDB FOR SYSTEM_TIME AS OF 1 MATCH (n) RETURN count(*)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"aion/internal/bolt"
	"aion/internal/cypher"
	"aion/internal/repl"
	"aion/internal/system"
	"aion/internal/vfs"
)

func main() {
	var (
		dir          = flag.String("dir", "", "embedded storage directory (default: temp)")
		addr         = flag.String("addr", "", "connect to a Bolt server instead of embedding")
		script       = flag.String("f", "", "run statements from this file and exit")
		queryTimeout = flag.Duration("query-timeout", 0, "per-statement deadline (0 = none / server default)")
	)
	flag.Parse()

	var exec repl.Executor
	if *addr != "" {
		client, err := bolt.Dial(*addr)
		if err != nil {
			fail(err)
		}
		defer client.Close()
		exec = repl.RemoteExecutor{Client: client, Timeout: *queryTimeout}
	} else {
		opts := system.Options{Dir: *dir}
		if *dir == "" {
			d, err := vfs.MkdirTemp("", "aion-shell-*")
			if err != nil {
				fail(err)
			}
			opts.Dir = d
		}
		sys, err := system.Open(opts)
		if err != nil {
			fail(err)
		}
		defer sys.Close()
		exec = repl.EmbeddedExecutor{Engine: cypher.NewEngine(sys), Timeout: *queryTimeout}
	}

	if *script != "" {
		data, err := os.ReadFile(*script)
		if err != nil {
			fail(err)
		}
		if err := repl.Script(strings.Split(string(data), "\n"), os.Stdout, exec); err != nil {
			fail(err)
		}
		return
	}

	fmt.Println("aion-shell — temporal Cypher; :help for help, :quit to exit")
	if err := repl.Run(os.Stdin, os.Stdout, exec); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "aion-shell:", err)
	os.Exit(1)
}
