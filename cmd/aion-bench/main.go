// Command aion-bench regenerates the paper's evaluation tables and figures
// (Sec 6) on scaled-down synthetic stand-ins for the Table 3 datasets.
//
// Usage:
//
//	aion-bench -exp all                 # every experiment
//	aion-bench -exp fig7 -scale 100     # one figure at 1/100 scale
//	aion-bench -exp table3,fig6,fig11
//
// Experiments: table3, table4, fig6, fig7, fig8, fig9, fig10, fig11,
// fig12, fig13, fig14, ext (incremental SSSP/colouring extension), write
// (commit-throughput sweep with the group-commit ablation).
//
// -json <path> additionally writes every recorded measurement as a
// machine-readable BENCH_*.json report (name, ops/sec, p50/p99 latency,
// fsync counters).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"aion/internal/bench"
	"aion/internal/vfs"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "comma-separated experiments to run (or 'all')")
		scale    = flag.Int("scale", 1000, "dataset scale divisor vs Table 3 (100 = larger, slower)")
		datasets = flag.String("datasets", "", "comma-separated dataset subset (default: first four)")
		seed     = flag.Int64("seed", 42, "workload generation seed")
		pointOps = flag.Int("pointops", 20000, "point queries per system (paper: 1M)")
		globals  = flag.Int("globalops", 20, "snapshot retrievals per system (paper: 100)")
		workdir  = flag.String("dir", "", "working directory for store files (default: temp)")
		jsonPath = flag.String("json", "", "write machine-readable results to this JSON file")
		writeOps = flag.Int("writeops", 200, "commits per committer in the write-path suite")
		writeCs  = flag.String("committers", "", "comma-separated committer counts for the write suite (default 1,4,16,64)")
		syncOnly = flag.Bool("synconly", false, "write suite: measure only synchronous (durable) commits")
		baseline = flag.String("baseline", "", "BENCH_*.json file to compare this run's records against (informational)")
	)
	flag.Parse()

	report := &bench.Report{}
	cfg := bench.Config{
		Scale:     *scale,
		Seed:      *seed,
		PointOps:  *pointOps,
		GlobalOps: *globals,
		Out:       os.Stdout,
		Report:    report,
	}
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}

	base := *workdir
	if base == "" {
		var err error
		base, err = vfs.MkdirTemp("", "aion-bench-*")
		if err != nil {
			fail(err)
		}
		//aionlint:ignore vfsseam operator scratch cleanup of a temp dir this process created; store files are never removed through this path
		defer os.RemoveAll(base)
	}
	mkdir := func(name string) string {
		d, err := vfs.MkdirTemp(base, strings.ReplaceAll(name, "/", "_")+"-*")
		if err != nil {
			fail(err)
		}
		return d
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := want["all"]
	ran := 0
	run := func(name string, fn func() error) {
		if !all && !want[name] {
			return
		}
		ran++
		fmt.Printf("\n--- running %s ---\n", name)
		if err := fn(); err != nil {
			fail(fmt.Errorf("%s: %w", name, err))
		}
	}

	run("table3", func() error { _, err := bench.RunTable3(cfg); return err })
	run("fig6", func() error { _, err := bench.RunFig6(cfg, mkdir); return err })
	run("fig7", func() error { _, err := bench.RunFig7(cfg, mkdir); return err })
	run("fig8", func() error { _, err := bench.RunFig8(cfg, mkdir, nil, 0); return err })
	run("table4", func() error { _, err := bench.RunTable4(cfg, mkdir); return err })
	run("fig9", func() error { _, err := bench.RunFig9(cfg, mkdir, 1000, 8); return err })
	run("fig10", func() error { _, err := bench.RunFig10(cfg, mkdir); return err })
	run("fig11", func() error { _, err := bench.RunFig11(cfg, mkdir, nil, 32); return err })
	run("fig12", func() error { _, err := bench.RunFig12(cfg, []int{10, 100}); return err })
	run("fig13", func() error { _, err := bench.RunFig13(cfg, mkdir, 8, 100); return err })
	run("fig14", func() error { _, err := bench.RunFig14(cfg, mkdir, []int{10}); return err })
	run("ext", func() error { _, err := bench.RunExtensionIncremental(cfg, []int{10, 100}); return err })
	run("history", func() error { _, err := bench.RunHistory(cfg, mkdir); return err })
	run("write", func() error {
		wc := bench.WriteConfig{OpsPerCommitter: *writeOps}
		if *writeCs != "" {
			for _, s := range strings.Split(*writeCs, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(s))
				if err != nil || n <= 0 {
					return fmt.Errorf("bad -committers entry %q", s)
				}
				wc.Committers = append(wc.Committers, n)
			}
		}
		if *syncOnly {
			wc.SyncModes = []bool{true}
		}
		_, err := bench.RunWritePath(cfg, mkdir, wc)
		return err
	})

	if ran == 0 {
		fail(fmt.Errorf("unknown experiment(s) %q", *exp))
	}
	if *jsonPath != "" {
		if err := report.WriteFile(nil, *jsonPath); err != nil {
			fail(err)
		}
		fmt.Printf("\nwrote %d result(s) to %s\n", len(report.Records()), *jsonPath)
	}
	if *baseline != "" {
		if err := report.CompareBaseline(nil, *baseline, os.Stdout); err != nil {
			// Informational only: a missing or stale baseline must not fail
			// the bench run that would regenerate it.
			fmt.Fprintln(os.Stderr, "aion-bench: baseline comparison skipped:", err)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "aion-bench:", err)
	os.Exit(1)
}
