// Command aion-server runs a host graph database with Aion attached and
// serves temporal Cypher over the Bolt-like protocol (Sec 6.7).
//
// Usage:
//
//	aion-server -addr 127.0.0.1:7687 -dir /var/lib/aion
//
// Connect with cmd/aion-shell or the internal/bolt client.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"aion/internal/bolt"
	"aion/internal/cypher"
	"aion/internal/system"
	"aion/internal/vfs"
)

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:7687", "listen address")
		dir           = flag.String("dir", "", "storage directory (default: temp)")
		queryTimeout  = flag.Duration("query-timeout", 30*time.Second, "default per-query deadline (0 disables)")
		maxConcurrent = flag.Int("max-concurrent", 64, "concurrent query limit; excess queries are shed (0 = unbounded)")
		drainTimeout  = flag.Duration("drain-timeout", 5*time.Second, "how long shutdown waits for in-flight queries")
	)
	flag.Parse()

	opts := system.Options{Dir: *dir}
	if *dir == "" {
		d, err := vfs.MkdirTemp("", "aion-server-*")
		if err != nil {
			fail(err)
		}
		opts.Dir = d
		fmt.Println("storage:", d)
	}
	sys, err := system.Open(opts)
	if err != nil {
		fail(err)
	}
	defer sys.Close()

	srv := bolt.NewServer(cypher.NewEngine(sys), bolt.Options{
		QueryTimeout:  *queryTimeout,
		MaxConcurrent: *maxConcurrent,
		DrainTimeout:  *drainTimeout,
	})
	bound, err := srv.Listen(*addr)
	if err != nil {
		fail(err)
	}
	fmt.Println("aion-server listening on", bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	srv.Close()
	m := srv.Metrics()
	fmt.Printf("served %d queries (%d shed, %d timed out, %d panics contained)\n",
		m.Queries, m.Shed, m.Timeouts, m.Panics)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "aion-server:", err)
	os.Exit(1)
}
