// Command aion-server runs a host graph database with Aion attached and
// serves temporal Cypher over the Bolt-like protocol (Sec 6.7).
//
// Usage:
//
//	aion-server -addr 127.0.0.1:7687 -dir /var/lib/aion
//
// Run a read replica by pointing it at a primary; it tails the primary's
// WAL and serves historical reads at or below its replicated watermark:
//
//	aion-server -addr 127.0.0.1:7688 -dir /var/lib/aion-r1 -replica-of 127.0.0.1:7687
//
// Connect with cmd/aion-shell or the internal/bolt client (bolt.Router
// routes reads across replicas with primary fallback).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"aion/internal/bolt"
	"aion/internal/cypher"
	"aion/internal/model"
	"aion/internal/replica"
	"aion/internal/system"
	"aion/internal/vfs"
)

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:7687", "listen address")
		advertise     = flag.String("advertise", "", "address advertised to clients and logs (default: the bound address)")
		dir           = flag.String("dir", "", "storage directory (default: temp)")
		queryTimeout  = flag.Duration("query-timeout", 30*time.Second, "default per-query deadline (0 disables)")
		maxConcurrent = flag.Int("max-concurrent", 64, "concurrent query limit; excess queries are shed (0 = unbounded)")
		drainTimeout  = flag.Duration("drain-timeout", 5*time.Second, "how long shutdown waits for in-flight queries")
		syncCommits   = flag.Bool("sync-commits", true, "fsync the transaction log on every commit (required for replication: only durable bytes are shipped)")
		replicaOf     = flag.String("replica-of", "", "primary address to replicate from; makes this node a read-only follower")
		staleness     = flag.Int64("staleness-bound", 1000, "max commits a replica may lag before latest reads are rejected (0 = no bound)")
		disconnGrace  = flag.Duration("disconnect-grace", 5*time.Second, "max heartbeat silence before a replica rejects latest reads (0 disables)")
	)
	flag.Parse()

	opts := system.Options{Dir: *dir, SyncCommits: *syncCommits, Replica: *replicaOf != ""}
	if *dir == "" {
		d, err := vfs.MkdirTemp("", "aion-server-*")
		if err != nil {
			fail(err)
		}
		opts.Dir = d
		fmt.Println("storage:", d)
	}
	sys, err := system.Open(opts)
	if err != nil {
		fail(err)
	}
	defer sys.Close()

	srvOpts := bolt.Options{
		QueryTimeout:  *queryTimeout,
		MaxConcurrent: *maxConcurrent,
		DrainTimeout:  *drainTimeout,
	}

	// Every node serves REPLICATE streams: after a PROMOTE the ex-follower
	// is the shipping primary, and the Source refuses streams (FailFenced)
	// while the node is not primary, so running it everywhere is safe.
	src := replica.NewSource(sys.Host)
	srvOpts.ReplicationHandler = src.ServeConn
	srvOpts.Replication = src

	var follower *replica.Follower
	var applier *replica.Applier
	if *replicaOf != "" {
		// Follower: reject writes and above-watermark reads at the gate,
		// and tail the primary's WAL in the background.
		applier = replica.NewApplier(sys)
		applier.StalenessBound = model.Timestamp(*staleness)
		applier.DisconnectGrace = *disconnGrace
		srvOpts.ReadGate = applier.Gate
		srvOpts.Replication = applier
		follower = &replica.Follower{Applier: applier, Addr: *replicaOf}
	}
	// The admin surface: PROMOTE/STATUS verbs and epoch gossip. Promotion
	// stops the follower stream before flipping the role.
	node := replica.NewNode(sys, applier)
	srvOpts.Admin = node

	srv := bolt.NewServer(cypher.NewEngine(sys), srvOpts)
	bound, err := srv.Listen(*addr)
	if err != nil {
		fail(err)
	}
	public := *advertise
	if public == "" {
		public = bound
	}
	if *replicaOf != "" {
		fmt.Printf("aion-server (replica of %s) listening on %s (advertised %s)\n", *replicaOf, bound, public)
	} else {
		fmt.Printf("aion-server (primary) listening on %s (advertised %s)\n", bound, public)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var followerExit <-chan struct{}
	if follower != nil {
		node.StartFollower(ctx, follower)
		followerExit = node.FollowerDone()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
serve:
	for {
		select {
		case <-sig:
			fmt.Println("shutting down")
			break serve
		case <-followerExit: // nil channel on a primary: blocks forever
			followerExit = nil
			if err := node.FollowerErr(); err != nil {
				// Divergence fail-stop: this node's log is not a prefix of
				// the primary's. Operator intervention (reseed) required.
				fmt.Fprintln(os.Stderr, "aion-server: replication fail-stop:", err)
				break serve
			}
			// Clean stop: a PROMOTE flipped this node writable. The stream
			// stops BEFORE the role flips, so briefly wait for the settled
			// status before logging it. Keep serving either way.
			st := node.NodeStatus()
			for wait := 0; st.Role == "replica" && wait < 20; wait++ {
				time.Sleep(50 * time.Millisecond)
				st = node.NodeStatus()
			}
			fmt.Printf("promoted: now %s at epoch %d\n", st.Role, st.Epoch)
		}
	}
	cancel()
	srv.Close()
	m := srv.Metrics()
	fmt.Printf("served %d queries (%d shed, %d timed out, %d panics contained, %d gate-rejected)\n",
		m.Queries, m.Shed, m.Timeouts, m.Panics, m.Rejected)
	if r := m.Replication; r != nil {
		fmt.Printf("replication: %d frames shipped (%d B), %d applied (%d B), %d heartbeats, %d reconnects, watermark %d (lag %d)\n",
			r.FramesShipped, r.BytesShipped, r.FramesApplied, r.BytesApplied,
			r.Heartbeats, r.Reconnects, r.Watermark, r.WatermarkLag)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "aion-server:", err)
	os.Exit(1)
}
