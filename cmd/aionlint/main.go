// Command aionlint runs the repo-specific static analyzer suite
// (internal/lint) over the Aion tree. It exists because the invariants
// the crash sweeps and the serving contract depend on — vfs-seam-only
// I/O, fail-stop durability errors, cancellable scan loops, no fsync
// under a lock, unmixed atomics, acyclic lock order, strings-before-WAL
// flush ordering, exit-aware goroutines — are system-wide conventions no
// compiler checks.
//
// Usage:
//
//	aionlint [flags] [patterns...]
//
// Patterns default to ./internal/... ./cmd/... and are interpreted
// relative to the module root (found by walking up from -root). The exit
// status is 0 when the tree is clean, 1 when any unsuppressed finding or
// type-check failure remains, and 2 on a driver error (including packages
// that fail to parse or load; the error names the offending position).
//
// The module is parsed and type-checked exactly once; every analyzer —
// and the shared flow layer the flow-aware ones use — works off that one
// load. -v prints per-analyzer wall-clock timings alongside suppressed
// findings.
//
// Suppress an individual finding, with a reason, on the offending line
// or the line above it:
//
//	//aionlint:ignore <code> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"aion/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() (status int) {
	// A load or analysis panic must not take the CI step down with a
	// stack trace as its only output: fold it into the driver-error exit
	// code with a message.
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "aionlint: internal error: %v\n", r)
			status = 2
		}
	}()

	root := flag.String("root", ".", "directory inside the module to lint")
	verbose := flag.Bool("v", false, "also list suppressed findings, their reasons, and per-analyzer timings")
	list := flag.Bool("list", false, "list analyzers and exit")
	codes := flag.String("analyzers", "", "comma-separated analyzer codes to run (default: all)")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-10s %s\n", a.Code, a.Doc)
		}
		return 0
	}

	analyzers, err := lint.ByCode(*codes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./internal/...", "./cmd/..."}
	}

	loadStart := time.Now()
	loader, err := lint.NewLoader(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	pkgs, err := loader.Load(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	loadDur := time.Since(loadStart)

	// Type-check failures degrade the analyzers to syntactic heuristics,
	// so they fail the run: a lint pass that silently lost its type
	// information is not a pass.
	typeErrs := 0
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "typecheck: %v\n", e)
			typeErrs++
		}
	}

	findings, timings := lint.RunTimed(pkgs, analyzers)
	suppressed := 0
	for _, f := range findings {
		if f.Suppressed {
			suppressed++
			if *verbose {
				fmt.Printf("%s [suppressed: %s]\n", f, f.SuppressReason)
			}
			continue
		}
		fmt.Println(f)
	}

	if *verbose {
		fmt.Fprintf(os.Stderr, "aionlint: load+typecheck %v (shared across all analyzers)\n", loadDur.Round(time.Millisecond))
		for _, t := range timings {
			fmt.Fprintf(os.Stderr, "aionlint: %-10s %v\n", t.Code, t.Dur.Round(time.Millisecond))
		}
	}

	bad := lint.Unsuppressed(findings)
	fmt.Fprintf(os.Stderr, "aionlint: %d packages, %d findings (%d suppressed), %d type errors\n",
		len(pkgs), bad+suppressed, suppressed, typeErrs)
	if bad > 0 || typeErrs > 0 {
		return 1
	}
	return 0
}
