GO ?= go

.PHONY: build test race vet bench-smoke fuzz-smoke stress

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-checks the packages touched by the parallel snapshot pipeline plus
# everything else under internal/ (all are expected to be race-clean).
race:
	$(GO) test -race ./internal/...

vet:
	$(GO) vet ./...

# One iteration of the read-path benchmarks: enough to catch regressions in
# the pipeline wiring without a full benchmark run.
bench-smoke:
	$(GO) test -run '^$$' -bench 'SnapshotLoad|GetGraph$$' -benchtime 1x ./internal/timestore/

# Concurrent serving-path stress under the race detector: mixed
# reader/writer bolt clients against an undersized admission limit, plus the
# engine-level writer/reader mix and the cancellation suite.
stress:
	$(GO) test -race -count=2 -run 'Stress|Concurrent|Cancel|Deadline|Overload|Drain|Panic' ./internal/bolt/ ./internal/cypher/

# A short run of the record-decoder fuzzer (recovery feeds it torn log
# tails): long enough to exercise the mutator, short enough for CI.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzDecodeUpdates -fuzztime 30s ./internal/enc/
