GO ?= go

.PHONY: build test race vet lint cover bench-smoke fuzz-smoke stress replica-smoke seal-sweep failover-sweep

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-checks the packages touched by the parallel snapshot pipeline plus
# everything else under internal/ (all are expected to be race-clean).
race:
	$(GO) test -race ./internal/...

vet:
	$(GO) vet ./...

# The repo's own analyzer suite (cmd/aionlint): vfs-seam, dropped
# durability errors, cancellation-blind loops, fsync-under-lock, plus the
# flow-aware layer — mixed atomics, lock-order cycles, string-flush
# ordering before WAL appends, leak-shaped goroutines. Fails on any
# unsuppressed finding; see README for the suppression syntax. The full
# -v report (findings, suppressions with reasons, per-analyzer timings)
# lands in aionlint.txt, the CI-visible artifact.
lint:
	$(GO) run ./cmd/aionlint -v > aionlint.txt 2>&1; s=$$?; cat aionlint.txt; exit $$s

# Atomic-mode coverage over internal/; the per-package breakdown is the
# CI-visible artifact.
cover:
	$(GO) test -covermode=atomic -coverprofile=coverage.out ./internal/...
	$(GO) tool cover -func=coverage.out | tail -1

# One iteration of the read-path benchmarks: enough to catch regressions in
# the pipeline wiring without a full benchmark run.
# Read-path micro-benchmarks, the commit-throughput suite (group-commit
# pipeline vs the NoGroupCommit ablation), and a machine-readable
# BENCH_smoke.json snapshot at the repo root.
bench-smoke:
	$(GO) test -run '^$$' -bench 'SnapshotLoad|GetGraph$$' -benchtime 1x ./internal/timestore/
	$(GO) test -run '^$$' -bench 'CommitThroughput' -benchtime 100x ./internal/hostdb/
	$(GO) run ./cmd/aion-bench -exp write -writeops 50 -committers 1,16 -json BENCH_smoke.json

# Concurrent serving-path stress under the race detector: mixed
# reader/writer bolt clients against an undersized admission limit, plus the
# engine-level writer/reader mix and the cancellation suite.
stress:
	$(GO) test -race -count=2 -run 'Stress|Concurrent|Cancel|Deadline|Overload|Drain|Panic|Replica' ./internal/bolt/ ./internal/cypher/ ./internal/hostdb/ ./internal/system/
	$(GO) test -race -count=1 ./internal/replica/

# Replication smoke over real TCP: a primary and two follower servers, one
# follower's stream killed mid-flight (it must reconnect and re-converge),
# plus router fallback and dial-failure backoff.
replica-smoke:
	$(GO) test -race -count=1 -run 'TestReplicationOverTCP|TestRouterFallback|TestFollowerReconnectBackoff' -v ./internal/replica/

# A short run of the record-decoder fuzzers (recovery feeds the update
# decoder torn log tails; chain recovery feeds the delta-header decoder
# arbitrary .dsnap prefixes): long enough to exercise the mutators, short
# enough for CI.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzDecodeUpdates -fuzztime 30s ./internal/enc/
	$(GO) test -run '^$$' -fuzz FuzzDecodeDelta -fuzztime 15s ./internal/enc/

# The failover gate: the kill/partition × protocol-point promotion sweep
# plus the seeded replication chaos soak, across a bounded seed set under
# the race detector. Per-seed verbose results accumulate in
# FAILOVER_sweep.txt (the CI-visible artifact); any failing seed fails
# the target with the transcript printed.
FAILOVER_SEEDS ?= 1 7 13
failover-sweep:
	@: > FAILOVER_sweep.txt
	@set -e; for s in $(FAILOVER_SEEDS); do \
		echo "== failover sweep, seed $$s =="; \
		echo "== seed $$s ==" >> FAILOVER_sweep.txt; \
		$(GO) test -race -count=1 -v -run 'TestFailoverSweep|TestReplicationChaosSeeded' \
			./internal/replica/ -failover.seed=$$s >> FAILOVER_sweep.txt 2>&1 \
			|| { tail -40 FAILOVER_sweep.txt; exit 1; }; \
	done
	@grep -c '^=== RUN' FAILOVER_sweep.txt | xargs -I{} echo "failover sweep: {} scenario runs, all passed (see FAILOVER_sweep.txt)"

# The partitioned-history gate: the seal crash sweeps and the cross-store
# equivalence harness (partitioned vs monolithic, byte-identical results)
# under the race detector, then the history-depth benchmark with its
# machine-readable artifact, compared (informationally) against the
# checked-in baseline.
seal-sweep:
	$(GO) test -race -count=1 -run 'TestCrashSweepSeal|TestRecoveryDropsOrphanDeltas' ./internal/timestore/
	$(GO) test -race -count=1 ./internal/tstest/
	$(GO) run ./cmd/aion-bench -exp history -scale 500 -globalops 12 -json BENCH_seal.json -baseline BENCH_baseline.json
